package lint

import (
	"go/ast"
	"go/types"
)

// Clocked enforces the simulated-time discipline on clocked components:
// a type exposing a Tick or Cycle method advances cycle by cycle under the
// simulator's clock, so it must never mix in host time. Concretely:
//
//   - the component's struct must not hold time.Time or time.Duration state
//     (cycle counts and the platform clock frequency are the simulated
//     clock; a Duration field invites wall-clock leakage into the model),
//   - the tick method must not read the host clock (time.Now and friends),
//   - the tick method must not spawn goroutines — a tick is one
//     synchronous clock edge; concurrency inside it makes cycle outcomes
//     scheduler-dependent.
type Clocked struct {
	// Methods are the method names marking a clocked component.
	Methods map[string]bool
}

// NewClocked returns the analyzer with the default Tick/Cycle markers.
func NewClocked() *Clocked {
	return &Clocked{Methods: map[string]bool{"Tick": true, "Cycle": true}}
}

func (*Clocked) Name() string { return "clocked-component" }

func (*Clocked) Doc() string {
	return "types with Tick/Cycle methods hold no host-time state, read no host clock, and spawn no goroutines per tick"
}

// Check implements Analyzer.
func (c *Clocked) Check(pkg *Package) []Finding {
	var out []Finding
	reportedType := map[*types.Named]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !c.Methods[fd.Name.Name] {
				continue
			}
			named := receiverNamed(pkg, fd)
			if named == nil {
				continue
			}
			if !reportedType[named] {
				reportedType[named] = true
				out = append(out, c.checkFields(pkg, named, fd)...)
			}
			out = append(out, c.checkBody(pkg, named, fd)...)
		}
	}
	return out
}

// receiverNamed resolves the receiver's named type (through a pointer).
func receiverNamed(pkg *Package, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkFields flags host-time state in the component's struct.
func (c *Clocked) checkFields(pkg *Package, named *types.Named, fd *ast.FuncDecl) []Finding {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []Finding
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if holdsHostTime(f.Type(), map[types.Type]bool{}) {
			out = append(out, pkg.finding(c.Name(), f.Pos(),
				"clocked component %s (has %s) holds host-time state in field %s (%s) — simulated time is cycle counts at the platform clock, never time.Time/time.Duration",
				named.Obj().Name(), fd.Name.Name, f.Name(), typeString(f.Type())))
		}
	}
	return out
}

// holdsHostTime reports whether t contains time.Time or time.Duration.
func holdsHostTime(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		if obj := t.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Time" || obj.Name() == "Duration") {
			return true
		}
		return holdsHostTime(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if holdsHostTime(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsHostTime(t.Elem(), seen)
	case *types.Slice:
		return holdsHostTime(t.Elem(), seen)
	case *types.Pointer:
		return holdsHostTime(t.Elem(), seen)
	}
	return false
}

// checkBody flags host-clock reads and goroutine launches inside the tick.
func (c *Clocked) checkBody(pkg *Package, named *types.Named, fd *ast.FuncDecl) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			out = append(out, pkg.findingNode(c.Name(), n,
				"%s.%s spawns a goroutine inside the tick — a tick is one synchronous clock edge; scheduling would make cycle outcomes nondeterministic",
				named.Obj().Name(), fd.Name.Name))
		case *ast.CallExpr:
			obj := pkg.objectOf(n.Fun)
			if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && wallClockFuncs[fn.Name()] {
					out = append(out, pkg.findingNode(c.Name(), n,
						"%s.%s calls time.%s — a clocked component must never read the host clock; simulated and host time must not mix",
						named.Obj().Name(), fd.Name.Name, fn.Name()))
				}
			}
		}
		return true
	})
	return out
}
