package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicBoundary enforces the PR 1 simulator-fault contract: invariant
// violations inside the simulator internals (internal/*) panic, and the
// public API packages must convert those panics into errors wrapping the
// ErrSimulatorFault sentinel before they cross an exported function. An
// exported, error-returning function of a boundary package that (directly or
// through package-local helpers) calls into internal/* must therefore defer
// a recover guard that wraps ErrSimulatorFault — either a function literal
// containing recover() and the sentinel, or a package-local guard function
// doing the same (e.g. partition's guardSimulator).
type PanicBoundary struct {
	// Boundary is the set of public API packages the contract applies to.
	Boundary map[string]bool
	// InternalPrefix marks the panic-capable simulator packages.
	InternalPrefix string
	// Sentinel is the name of the wrapping sentinel error.
	Sentinel string
}

// DefaultPanicBoundary returns the analyzer for the project's public API
// surface.
func DefaultPanicBoundary() *PanicBoundary {
	return &PanicBoundary{
		Boundary: map[string]bool{
			"fpgapart/partition":  true,
			"fpgapart/distjoin":   true,
			"fpgapart/partserver": true,
			"fpgapart/hashjoin":   true,
		},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
	}
}

func (*PanicBoundary) Name() string { return "panic-boundary" }

func (*PanicBoundary) Doc() string {
	return "legacy per-package panic-boundary check, superseded by boundary-reach (kept as the regression baseline)"
}

// funcFacts is the per-function analysis state.
type funcFacts struct {
	decl *ast.FuncDecl
	// callsInternal: the body directly calls a function or method of an
	// internal/* package.
	callsInternal bool
	// callees are package-local functions the body calls.
	callees []*types.Func
	// reachesInternal is callsInternal closed over the local call graph.
	reachesInternal bool
	// deferredGuard classifies the function's deferred recover handling.
	deferredGuard guardState
}

type guardState int

const (
	noGuard guardState = iota
	// recoverNoWrap: a deferred recover exists but never references the
	// sentinel — it would swallow the simulator fault instead of wrapping it.
	recoverNoWrap
	// guarded: a deferred recover wraps the sentinel.
	guarded
)

// Check implements Analyzer.
func (p *PanicBoundary) Check(pkg *Package) []Finding {
	if !p.Boundary[pkg.Path] {
		return nil
	}

	facts := map[*types.Func]*funcFacts{}
	var order []*types.Func
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[obj] = p.analyzeFunc(pkg, fd, facts)
			order = append(order, obj)
		}
	}

	// guardFuncs: package-local functions whose body both recovers and
	// references the sentinel (callable as a deferred guard).
	guardFuncs := map[*types.Func]bool{}
	for obj, f := range facts {
		if bodyRecovers(pkg, f.decl.Body) && mentionsName(f.decl.Body, p.Sentinel) {
			guardFuncs[obj] = true
		}
	}
	// Resolve deferred guards now that guard functions are known.
	for _, f := range facts {
		f.deferredGuard = p.guardStateOf(pkg, f.decl, guardFuncs)
	}

	// Close callsInternal over the package-local call graph.
	for _, obj := range order {
		p.propagate(obj, facts, map[*types.Func]bool{})
	}

	var out []Finding
	for _, obj := range order {
		f := facts[obj]
		if !ast.IsExported(obj.Name()) || !returnsError(obj) || !f.reachesInternal {
			continue
		}
		if guardFuncs[obj] {
			continue // the guard itself
		}
		switch f.deferredGuard {
		case guarded:
		case recoverNoWrap:
			out = append(out, pkg.finding(p.Name(), f.decl.Pos(),
				"exported %s recovers simulator panics without wrapping %s — callers must be able to errors.Is the fault", obj.Name(), p.Sentinel))
		default:
			out = append(out, pkg.finding(p.Name(), f.decl.Pos(),
				"exported %s reaches the simulator internals (%s*) without a deferred recover guard wrapping %s — a simulator invariant panic would escape the public API", obj.Name(), p.InternalPrefix, p.Sentinel))
		}
	}
	return out
}

func (p *PanicBoundary) propagate(obj *types.Func, facts map[*types.Func]*funcFacts, seen map[*types.Func]bool) bool {
	f, ok := facts[obj]
	if !ok {
		return false
	}
	if f.reachesInternal || f.callsInternal {
		f.reachesInternal = true
		return true
	}
	if seen[obj] {
		return false
	}
	seen[obj] = true
	for _, callee := range f.callees {
		if p.propagate(callee, facts, seen) {
			f.reachesInternal = true
			return true
		}
	}
	return false
}

func (p *PanicBoundary) analyzeFunc(pkg *Package, fd *ast.FuncDecl, _ map[*types.Func]*funcFacts) *funcFacts {
	f := &funcFacts{decl: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := pkg.objectOf(call.Fun)
		fn, isFunc := obj.(*types.Func)
		if !isFunc || fn.Pkg() == nil {
			return true
		}
		switch {
		case strings.HasPrefix(fn.Pkg().Path(), p.InternalPrefix):
			f.callsInternal = true
		case fn.Pkg() == pkg.Types:
			f.callees = append(f.callees, fn)
		}
		return true
	})
	return f
}

// guardStateOf classifies the function's deferred recover handling. Only
// defers in the function's own body count — a defer inside a nested function
// literal does not protect the enclosing function.
func (p *PanicBoundary) guardStateOf(pkg *Package, fd *ast.FuncDecl, guardFuncs map[*types.Func]bool) guardState {
	state := noGuard
	walkOwnStatements(fd.Body, func(n ast.Node) {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		switch fn := ds.Call.Fun.(type) {
		case *ast.FuncLit:
			if bodyRecovers(pkg, fn.Body) {
				if mentionsName(fn.Body, p.Sentinel) {
					state = guarded
				} else if state == noGuard {
					state = recoverNoWrap
				}
			}
		default:
			if obj, ok := pkg.objectOf(ds.Call.Fun).(*types.Func); ok && guardFuncs[obj] {
				state = guarded
			}
		}
	})
	return state
}

// walkOwnStatements visits the nodes of body without descending into nested
// function literals.
func walkOwnStatements(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			visit(n)
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// bodyRecovers reports whether body contains a call to the recover builtin.
func bodyRecovers(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && pkg.isRecoverCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsName reports whether body contains an identifier with the given
// name (the sentinel may be package-local or a re-export, so matching by
// name is the robust check).
func mentionsName(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// returnsError reports whether the function's results include the error
// interface.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorInterface(res.At(i).Type()) {
			return true
		}
	}
	return false
}
