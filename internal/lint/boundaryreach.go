package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BoundaryReach is the call-graph upgrade of PR 2's panic-boundary
// analyzer. The contract is unchanged — invariant violations inside the
// simulator internals (internal/*) panic, and the public API packages must
// convert those panics into errors wrapping ErrSimulatorFault before they
// cross an exported function — but the check is now reachability over the
// whole-module call graph instead of a per-package call scan:
//
//   - a finding requires an actual panic SITE to be reachable, so exported
//     APIs that touch panic-free internal helpers no longer need a guard;
//   - reachability crosses package boundaries (boundary pkg → sibling
//     helper pkg → internal/* panic — the shape the per-package analyzer
//     provably misses, see TestBoundaryReachCatchesWhatPanicBoundaryMisses)
//     and module-interface dispatch;
//   - a deferred recover guard wrapping the sentinel cuts the path wherever
//     it appears: an exported API calling an already-guarded exported API
//     (hashjoin → partition.Partition) is safe without its own guard.
type BoundaryReach struct {
	// Boundary is the set of public API packages the contract applies to.
	Boundary map[string]bool
	// InternalPrefix marks the panic-capable simulator packages.
	InternalPrefix string
	// Sentinel is the name of the wrapping sentinel error.
	Sentinel string
	// MaxHops caps the reported call-chain length in messages.
	MaxHops int
}

// DefaultBoundaryReach returns the analyzer for the project's public API
// surface, mirroring DefaultPanicBoundary's boundary set.
func DefaultBoundaryReach() *BoundaryReach {
	return &BoundaryReach{
		Boundary: map[string]bool{
			"fpgapart/partition":  true,
			"fpgapart/distjoin":   true,
			"fpgapart/partserver": true,
			"fpgapart/hashjoin":   true,
			"fpgapart/cluster":    true,
		},
		InternalPrefix: "fpgapart/internal/",
		Sentinel:       "ErrSimulatorFault",
		MaxHops:        6,
	}
}

func (*BoundaryReach) Name() string { return "boundary-reach" }

func (*BoundaryReach) Doc() string {
	return "exported error-returning APIs that can reach an internal/* panic site carry a deferred ErrSimulatorFault recover guard"
}

// Check implements Analyzer; boundary-reach only runs at module scope.
func (*BoundaryReach) Check(*Package) []Finding { return nil }

// CheckModule implements ModuleAnalyzer.
func (b *BoundaryReach) CheckModule(mod *Module) []Finding {
	g := mod.Graph

	// Classify every declared function's deferred recover handling once;
	// guarded nodes cut reachability, guard functions are exempt targets.
	guards := map[*Node]guardState{}
	guardFns := map[*types.Func]bool{}
	for _, n := range g.Nodes() {
		if bodyRecovers(n.Pkg, n.Decl.Body) && mentionsName(n.Decl.Body, b.Sentinel) {
			guardFns[n.Fn] = true
		}
	}
	for _, n := range g.Nodes() {
		guards[n] = b.guardStateOf(n, guardFns)
	}

	var out []Finding
	for _, n := range g.Nodes() {
		if !b.Boundary[n.Pkg.Path] {
			continue
		}
		if !ast.IsExported(n.Fn.Name()) || !returnsError(n.Fn) {
			continue
		}
		if b.isInterfaceMethodDecl(n) {
			continue
		}
		if guardFns[n.Fn] || guards[n] == guarded {
			continue
		}
		if path, site := b.panicReach(g, n, guards, guardFns); site != nil {
			chain := b.chainString(n, path)
			if guards[n] == recoverNoWrap {
				out = append(out, n.Pkg.findingNode(b.Name(), n.Decl.Name,
					"exported %s recovers simulator panics without wrapping %s (panic site reachable via %s) — callers must be able to errors.Is the fault",
					n.Fn.Name(), b.Sentinel, chain))
				continue
			}
			out = append(out, n.Pkg.findingNode(b.Name(), n.Decl.Name,
				"exported %s can reach a panic in %s via %s without an intervening deferred recover guard wrapping %s — a simulator invariant panic would escape the public API",
				n.Fn.Name(), site.PkgPath(), chain, b.Sentinel))
		}
	}
	return out
}

// panicReach walks the call graph from n and returns the first reachable
// internal/* panic site (with the edge path leading to it), skipping
// guarded functions and guard functions themselves. Deterministic: the walk
// follows edges in discovery order.
func (b *BoundaryReach) panicReach(g *CallGraph, start *Node, guards map[*Node]guardState, guardFns map[*types.Func]bool) (path []*Edge, site *Node) {
	cut := func(n *Node) bool {
		if n == start {
			return false
		}
		return guardFns[n.Fn] || guards[n] == guarded
	}
	g.Reach(start, nil, cut, func(p []*Edge, n *Node) bool {
		if n.HasPanic && strings.HasPrefix(n.PkgPath(), b.InternalPrefix) {
			path = append([]*Edge(nil), p...)
			site = n
			return false
		}
		return true
	})
	return path, site
}

// chainString renders the call chain boundary → … → panic site for the
// finding message, eliding middles beyond MaxHops.
func (b *BoundaryReach) chainString(start *Node, path []*Edge) string {
	names := []string{start.String()}
	for _, e := range path {
		names = append(names, e.Callee.String())
	}
	max := b.MaxHops
	if max <= 0 {
		max = 6
	}
	if len(names) > max {
		head := names[:max-1]
		names = append(append([]string{}, head...), "…", names[len(names)-1])
	}
	return strings.Join(names, " → ")
}

// guardStateOf classifies a node's deferred recover handling: a deferred
// function literal that recovers and mentions the sentinel, or a deferred
// call to a guard function (package-local or imported).
func (b *BoundaryReach) guardStateOf(n *Node, guardFns map[*types.Func]bool) guardState {
	state := noGuard
	pkg := n.Pkg
	walkOwnStatements(n.Decl.Body, func(node ast.Node) {
		ds, ok := node.(*ast.DeferStmt)
		if !ok {
			return
		}
		switch fn := ds.Call.Fun.(type) {
		case *ast.FuncLit:
			if bodyRecovers(pkg, fn.Body) {
				if mentionsName(fn.Body, b.Sentinel) {
					state = guarded
				} else if state == noGuard {
					state = recoverNoWrap
				}
			}
		default:
			if obj, ok := pkg.objectOf(ds.Call.Fun).(*types.Func); ok {
				if g := guardFns[obj.Origin()]; g {
					state = guarded
				}
			}
		}
	})
	return state
}

// isInterfaceMethodDecl reports whether n declares a method on an interface
// (impossible for FuncDecls, but kept for future engine reuse); it also
// filters methods whose receiver is itself an interface type.
func (b *BoundaryReach) isInterfaceMethodDecl(n *Node) bool {
	sig, ok := n.Fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}
