// Package membudgetfix is a known-bad fixture for the determinism analyzer
// applied to memory-budget accounting, now that internal/membudget sits on
// the deterministic path: budget decisions and replayed accounting must be a
// pure function of the inputs, never of the wall clock, map order, or the
// global rand source. Every `// want <analyzer>` comment marks a line the
// analyzer must flag. Loaded under a synthetic import path by the tests; it
// never builds as part of the module.
package membudgetfix

import (
	"math/rand"
	"time"
)

// Budget is a memory budget whose accounting drifts per run in three ways
// the analyzer must each catch.
type Budget struct {
	capBytes int64
	inUse    int64
	high     int64
	// stampNS records when the high-water mark was last raised — host time
	// in what must be a replayable ledger.
	stampNS int64
}

// Reserve admits n bytes and stamps the high-water mark with the wall
// clock, so two identical runs produce different ledgers.
func (b *Budget) Reserve(n int64) bool {
	if b.capBytes > 0 && b.inUse+n > b.capBytes {
		return false
	}
	b.inUse += n
	if b.inUse > b.high {
		b.high = b.inUse
		b.stampNS = time.Now().UnixNano() // want determinism
	}
	return true
}

// SpillOrder picks the partitions to spill by ranging over the per-partition
// usage map: the multiset of victims is stable, but the spill sequence — and
// with it every downstream spill offset and trace span — differs per run.
func SpillOrder(usage map[int]int64, need int64) []int {
	var victims []int
	var freed int64
	for p, n := range usage { // want determinism
		if freed >= need {
			break
		}
		victims = append(victims, p)
		freed += n
	}
	return victims
}

// JitteredFit randomizes admission near the cap from the unseeded global
// source — a nondeterministic spill decision.
func JitteredFit(inUse, n, capBytes int64) bool {
	if inUse+n <= capBytes {
		return true
	}
	return rand.Float64() < 0.01 // want determinism
}
