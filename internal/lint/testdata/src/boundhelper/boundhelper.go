// Package boundhelper is the sibling helper package of the boundary-reach
// fixture: a non-boundary, non-internal package forwarding into the
// panic-capable internals. It adds the extra call-graph hop that PR 2's
// per-package panic-boundary analyzer provably cannot follow (it only
// closes reachability over same-package callees).
package boundhelper

import "fpgapart/internal/fixpanic"

// Route forwards into the panic-capable internals.
func Route(v int) int { return fixpanic.Checked(v) }

// Pure never touches the internals.
func Pure(v int) int { return v + 2 }
