// Package clusterfix is the known-bad twin of the cluster routing tier:
// each violation below is a routing-tier bug shape the deterministic-path
// and boundary-reach rosters exist to catch now that fpgapart/cluster sits
// on both (TestClusterOnAnalyzerRosters pins the membership; this fixture,
// loaded under a synthetic path scoped into the same analyzers, proves
// each one actually fires on cluster-shaped code).
package clusterfix

import (
	"math/rand"
	"time"

	"fpgapart/internal/fixpanic"
)

// GatherLoad merges per-shard request counts by ranging over the map: the
// sum is order-insensitive, but the identical loop shape feeding a trace,
// a first-overloaded-shard report, or a tie-break silently differs per run
// — exactly the drift the deterministic path bans.
func GatherLoad(jobs map[int]int64) int64 {
	var total int64
	for _, n := range jobs { // want determinism
		total += n
	}
	return total
}

// StampAdmission records a request's admission on the host clock instead of
// the virtual one — the canonical way wall-clock jitter leaks into a
// "deterministic" latency distribution.
func StampAdmission() int64 {
	return time.Now().UnixMicro() // want determinism
}

// JitterBackoff draws failover backoff from the unseeded global math/rand
// source, so two same-seed runs retry dead shards in different orders.
func JitterBackoff(n int) int {
	return rand.Intn(n) // want determinism
}

// Route reaches the internal panic site (fixpanic stands in for the
// simulator internals) from an exported error-returning API with no
// deferred ErrSimulatorFault recover guard on the path.
func Route(key int) (int, error) { // want boundary-reach
	return fixpanic.Checked(key), nil
}

// PlanRebalance walks the replica assignment map to pick which key ranges a
// joining shard should take over. The plan's *content* is order-free, but
// the handoff barriers are installed in iteration order — under map
// randomization two same-seed runs drain the old owners in different
// sequences, so migrated requests observe different barrier times.
func PlanRebalance(replicas map[uint64][]int, joining int) []uint64 {
	var moved []uint64
	for key, set := range replicas { // want determinism
		if len(set) > 0 && set[0] != joining {
			moved = append(moved, key)
		}
	}
	return moved
}

// HedgeDeadline decides whether to issue a hedge by measuring the primary's
// elapsed time on the host clock — the hedging twin of StampAdmission.
// Scheduler jitter then decides which lane wins, so the report's hedge
// counters (and through the winner override, its latency tail) change run
// to run even at a fixed seed.
func HedgeDeadline(issued time.Time, deadline time.Duration) bool {
	return time.Since(issued) > deadline // want determinism
}
