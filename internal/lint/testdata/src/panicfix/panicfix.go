// Package panicfix is a known-bad fixture for the panic-boundary analyzer.
// It plays the role of a public API package sitting on top of the simulator
// internals (it really imports fpgapart/internal/fpga, whose constructors
// panic on invariant violations); the tests configure the analyzer with this
// package as the boundary.
package panicfix

import (
	"errors"
	"fmt"

	"fpgapart/internal/fpga"
)

// ErrSimulatorFault mirrors the partition package's sentinel.
var ErrSimulatorFault = errors.New("panicfix: simulator invariant fault")

// Unguarded reaches the simulator internals with no recover at all: a BRAM
// invariant panic would escape the exported API.
func Unguarded(words int) (*fpga.BRAM[uint64], error) { // want panic-boundary
	return fpga.NewBRAM[uint64](words), nil
}

// Swallows recovers but converts the panic into a bare error without the
// sentinel, so errors.Is(err, ErrSimulatorFault) can never see it.
func Swallows(words int) (b *fpga.BRAM[uint64], err error) { // want panic-boundary
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bram blew up: %v", r)
		}
	}()
	return fpga.NewBRAM[uint64](words), nil
}

// Indirect reaches the internals only through an unexported helper — the
// contract still applies across the package-local call chain.
func Indirect(words int) (int, error) { // want panic-boundary
	return capacity(words), nil
}

func capacity(words int) int {
	return fpga.NewBRAM[uint64](words).Words()
}

// Guarded converts simulator panics at the boundary, inline.
func Guarded(words int) (b *fpga.BRAM[uint64], err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
		}
	}()
	return fpga.NewBRAM[uint64](words), nil
}

// GuardedByHelper defers a named guard function, like partition's
// guardSimulator.
func GuardedByHelper(words int) (b *fpga.BRAM[uint64], err error) {
	defer guard(&err)
	return fpga.NewBRAM[uint64](words), nil
}

func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
	}
}

// Capacity reaches the internals but returns no error — accessors outside
// the error-returning contract are not flagged.
func Capacity(words int) int {
	return fpga.NewBRAM[uint64](words).Words()
}

// PureValidation never touches the internals and needs no guard.
func PureValidation(words int) error {
	if words <= 0 {
		return fmt.Errorf("panicfix: %d words", words)
	}
	return nil
}
