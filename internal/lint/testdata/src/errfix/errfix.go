// Package errfix is a known-bad fixture for the error-hygiene analyzer:
// errors crossing package boundaries must be wrapped with %w and tested
// with errors.Is, never matched as strings or compared with ==.
package errfix

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBudget is a sentinel error.
var ErrBudget = errors.New("errfix: retry budget exhausted")

// Wrap formats the error with %v, which severs the chain for errors.Is.
func Wrap(err error) error {
	return fmt.Errorf("exchange failed: %v", err) // want error-hygiene
}

// Describe loses the chain through %s just the same.
func Describe(node int, err error) error {
	return fmt.Errorf("node %d: %s", node, err) // want error-hygiene
}

// WrapOK preserves the chain.
func WrapOK(err error) error {
	return fmt.Errorf("exchange failed: %w", err)
}

// Matches greps the error text.
func Matches(err error) bool {
	return strings.Contains(err.Error(), "budget") // want error-hygiene
}

// TextEqual compares the rendered message.
func TextEqual(err error) bool {
	return err.Error() == "errfix: retry budget exhausted" // want error-hygiene
}

// SentinelCompare uses ==, which breaks as soon as any layer wraps.
func SentinelCompare(err error) bool {
	return err == ErrBudget // want error-hygiene
}

// SentinelOK survives wrapping.
func SentinelOK(err error) bool {
	return errors.Is(err, ErrBudget)
}

// NilChecksOK: comparing against nil is not sentinel comparison.
func NilChecksOK(err error) bool {
	return err == nil || err != nil
}

// RecoveredOK: %v on a recovered interface{} value is not an error value.
func RecoveredOK() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered: %v", r)
		}
	}()
	return nil
}
