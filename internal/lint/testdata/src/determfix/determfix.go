// Package determfix is a known-bad fixture for the determinism analyzer:
// every `// want <analyzer>` comment marks a line the analyzer must flag.
// The fixture is loaded under a synthetic deterministic-path import path by
// the tests; it never builds as part of the module.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// Ticker is a clocked component whose tick samples the wall clock — the
// canonical way host time leaks into a cycle model.
type Ticker struct {
	Cycles int64
	Stamp  int64
}

// Tick advances one simulated cycle but reads the host clock while doing so.
func (t *Ticker) Tick() {
	t.Cycles++
	t.Stamp = time.Now().UnixNano() // want determinism clocked-component
}

// Checksum folds per-partition counts by ranging over the map: the multiset
// value is stable, but any order-sensitive derivation from the same loop
// (first-mismatch reporting, piece ordering) silently differs per run.
func Checksum(counts map[uint32]int64) uint64 {
	var h uint64
	for k, n := range counts { // want determinism
		h = h*1099511628211 + uint64(k) ^ uint64(n)
	}
	return h
}

// Jitter draws from the unseeded global math/rand source.
func Jitter() float64 {
	return rand.Float64() // want determinism
}

// Backoff is a second global-source draw, of a different function.
func Backoff(n int) int {
	return rand.Intn(n) // want determinism
}

// SeededOK derives randomness from an explicitly seeded generator; methods
// of *rand.Rand are deterministic given the seed and must not be flagged.
func SeededOK(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// SortedOK shows the approved pattern — collect keys, sort, then iterate —
// and the escape hatch on the collection loop.
func SortedOK(counts map[uint32]int64) uint64 {
	keys := make([]uint32, 0, len(counts))
	for k := range counts { //fpgavet:allow determinism keys are sorted before use
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var h uint64
	for _, k := range keys {
		h = h*1099511628211 + uint64(k) ^ uint64(counts[k])
	}
	return h
}

// ElapsedOK does time.Duration arithmetic — simulated time is expressed in
// Duration, so types and constants from package time are fine.
func ElapsedOK(cycles int64, clockHz float64) time.Duration {
	return time.Duration(float64(cycles) / clockHz * float64(time.Second))
}
