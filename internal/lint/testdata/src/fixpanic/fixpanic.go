// Package fixpanic stands in for the simulator internals in the
// boundary-reach fixtures. The tests load it under the synthetic import path
// fpgapart/internal/fixpanic, so its panic site counts as an internal/*
// panic for the reachability analysis.
package fixpanic

// Checked panics on invariant violation, like the real internal
// constructors.
func Checked(v int) int {
	if v < 0 {
		panic("fixpanic: negative input")
	}
	return v * 2
}

// Safe provably cannot panic — exported APIs reaching only this helper need
// no recover guard under boundary-reach (the per-package panic-boundary
// analyzer flags them anyway, which is exactly the precision gap the
// call-graph upgrade closes).
func Safe(v int) int { return v + 1 }
