// Package reqtracefix is the known-bad twin of the causal-tracing layer:
// host-clock stamps flowing into the request recorder and the flight ring
// (directly and laundered through a helper), a map-range merge of per-shard
// flight timelines, a wall-clock deadline on the deterministic path, and a
// marker-declared hot recording wrapper that allocates per event. The tests
// configure this package's import path onto the deterministic path, so every
// construct here must be caught by the roster that guards the real
// fpgapart/internal/reqtrace package.
package reqtracefix

import (
	"time"

	"fpgapart/internal/reqtrace"
)

// StampAdmission feeds the host clock straight into the recorder's
// admission stamp — the arrival time every latency breakdown starts from.
func StampAdmission(r *reqtrace.Recorder, id int) {
	r.Admit(id, int64(id), time.Now().UnixNano()/1000) // want hosttime-taint determinism
}

// RecordLaundered routes host time through a helper into a flight event;
// the taint summary must carry it back to this call site.
func RecordLaundered(r *reqtrace.Recorder, job int) {
	r.Event(nowUS(), "sched", "fault", job, 0) // want hosttime-taint
}

func nowUS() int64 {
	return time.Now().UnixNano() / 1000 // want determinism
}

// RingStamp writes host time into the flight ring directly (positional
// literal: one level of field sensitivity means a keyed literal's taint
// stays on the field — DESIGN.md §14 records that blind spot).
func RingStamp(f *reqtrace.Flight, job int) {
	f.Record(reqtrace.FlightEvent{time.Since(epoch).Microseconds(), "router", "throttle", job, 0}) // want hosttime-taint determinism
}

var epoch time.Time

// MergeShards gathers per-shard flight timelines by ranging a map — the
// iteration order scrambles the merged postmortem between runs.
func MergeShards(shards map[int][]reqtrace.FlightEvent) []reqtrace.FlightEvent {
	var out []reqtrace.FlightEvent
	for _, evs := range shards { // want determinism
		out = append(out, evs...)
	}
	return out
}

// CleanRecord stamps a flight event with virtual time only: the analyzers
// must stay quiet here.
func CleanRecord(r *reqtrace.Recorder, us int64, job int) {
	r.Event(us, "sched", "dispatch", job, 0)
}

// HotAnnotate is a marker-declared hot wrapper that formats a label per
// event — a per-event allocation the zero-alloc recording contract forbids.
//
//fpgavet:hotpath
func HotAnnotate(f *reqtrace.Flight, us int64, job int) {
	labels := []string{"dispatch"} // want hotpath-alloc
	f.Record(reqtrace.FlightEvent{US: us, Comp: "sched", Kind: labels[0], Job: job})
}
