// Package hotfix is the known-bad fixture for the hotpath-alloc analyzer:
// a clocked component whose per-cycle call tree hides allocations one and
// two hops below the Tick/Cycle roots — including the interface boxing that
// testing.AllocsPerRun-style guards only catch for the exact entry points
// they exercise.
package hotfix

import "fmt"

// Pipe is a clocked component; its Tick and Cycle methods are hot roots.
type Pipe struct {
	buf   []uint64
	stats []int64
	n     int
}

// NewPipe is cold — construction-time allocation is exactly where hot-path
// state is supposed to be preallocated.
func NewPipe() *Pipe {
	return &Pipe{buf: make([]uint64, 0, 64), stats: make([]int64, 0, 16)}
}

// Tick is hot by method name.
func (p *Pipe) Tick() {
	p.n++
	p.record(int64(p.n))
	p.check()
	p.buf = append(p.buf, uint64(p.n)) // clean: field-backed slice, presized at construction
}

// record is one hop below the root; the boxing in its body is invisible to
// any per-function scan of Tick.
func (p *Pipe) record(v int64) {
	observe(v) // want hotpath-alloc
}

// observe takes an empty interface, so every concrete argument boxes.
func observe(v interface{}) { _ = v }

// check panics on invariant violation — panic arguments are exempt, a
// panicking tick is already a simulator fault.
func (p *Pipe) check() {
	if p.n < 0 {
		panic(fmt.Sprintf("hotfix: negative n %d", p.n)) // clean: panic argument
	}
}

// Cycle is hot by method name.
func (p *Pipe) Cycle() {
	p.stats = make([]int64, 0) // want hotpath-alloc
	p.flush()
	f := func() { p.n++ } // want hotpath-alloc
	f()
}

func (p *Pipe) flush() {
	var out []uint64
	out = append(out, p.buf...) // want hotpath-alloc
	_ = out
	msg := fmt.Sprintf("flushed %d", p.n) // want hotpath-alloc
	_ = msg
	_ = p.clone()
}

// clone is two hops below Cycle (via flush) — the address-of-composite
// allocates on every cycle.
func (p *Pipe) clone() *Pipe {
	return &Pipe{n: p.n} // want hotpath-alloc
}

// hotScan is hot by annotation, not by name or reachability.
//
//fpgavet:hotpath
func hotScan(vs []int64) int64 {
	seen := map[int64]bool{} // want hotpath-alloc
	var total int64
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			total += v
		}
	}
	return total
}

// Cold is unreachable from any root: its allocations are fine.
func Cold() []int64 {
	out := []int64{}
	out = append(out, hotScan(nil))
	return out
}
