// Package boundfix is the known-bad fixture for the boundary-reach
// analyzer. The tests configure it as a boundary package; it reaches the
// internal panic site in fpgapart/internal/fixpanic only THROUGH the
// sibling package boundhelper, so every flagged function here is invisible
// to the per-package panic-boundary analyzer — the differential the
// call-graph engine exists to close.
package boundfix

import (
	"errors"
	"fmt"

	"fpgapart/fixture/boundhelper"
	"fpgapart/internal/fixpanic"
)

// ErrSimulatorFault mirrors the partition package's sentinel.
var ErrSimulatorFault = errors.New("boundfix: simulator invariant fault")

// TwoHop reaches the internal panic site via boundfix → boundhelper.Route →
// fixpanic.Checked: two hops, the middle one in another package.
func TwoHop(v int) (int, error) { // want boundary-reach
	return boundhelper.Route(v), nil
}

// Swallow recovers but converts the panic into a bare error without the
// sentinel, so errors.Is(err, ErrSimulatorFault) can never see it.
func Swallow(v int) (out int, err error) { // want boundary-reach
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("swallowed: %v", r)
		}
	}()
	return boundhelper.Route(v), nil
}

// Guarded wraps the sentinel at the boundary — the cross-package chain is
// cut at the guard.
func Guarded(v int) (out int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrSimulatorFault, r)
		}
	}()
	return boundhelper.Route(v), nil
}

// CallsGuarded reaches the internals only through the already-guarded
// exported API above — safe without a guard of its own.
func CallsGuarded(v int) (int, error) {
	return Guarded(v)
}

// PanicFree touches internal code that provably cannot panic. The
// per-package analyzer flags this shape (any internal/* call is suspect to
// it); boundary-reach requires an actual reachable panic site and stays
// quiet.
func PanicFree(v int) (int, error) {
	return fixpanic.Safe(v), nil
}

// NoError reaches the panic site but returns no error — accessors outside
// the error-returning contract are not flagged.
func NoError(v int) int {
	return boundhelper.Route(v)
}
