// Package taintfix is the known-bad fixture for the hosttime-taint
// analyzer: host-clock values flowing into simtrace metric mutations and
// virtual-time fields, directly, laundered through a helper, and carried in
// a struct field. The tests configure this package's import path as part of
// the deterministic path so its *US fields count as virtual-time sinks.
package taintfix

import (
	"os"
	"time"

	"fpgapart/internal/simtrace"
)

// Lane is deterministic-path state: DoneUS is virtual time.
type Lane struct {
	DoneUS int64
	Label  string
}

// Direct feeds the host clock straight into a gated counter.
func Direct(c *simtrace.Counter) {
	c.Add(time.Now().UnixNano()) // want hosttime-taint
}

// Laundered routes the host clock through a helper whose summary carries
// the taint back to this call site.
func Laundered(c *simtrace.Counter) {
	v := elapsed()
	c.Add(v) // want hosttime-taint
}

func elapsed() int64 {
	start := time.Now()
	return time.Since(start).Microseconds()
}

// Stamp writes host time into a virtual-time field.
func Stamp(l *Lane) {
	l.DoneUS = time.Now().UnixNano() // want hosttime-taint
}

// Build writes host time into a virtual-time field via a composite literal.
func Build() Lane {
	return Lane{DoneUS: time.Now().UnixNano(), Label: "built"} // want hosttime-taint
}

// Clean records a value derived only from deterministic inputs.
func Clean(c *simtrace.Counter, cycles int64) {
	c.Add(cycles * 3)
}

// result mixes one host-derived field with deterministic siblings, like
// joincore.Result — field-level taint must not leak across.
type result struct {
	Matches int64
	Elapsed int64
}

func measure() result {
	s := time.Now()
	return result{Matches: 42, Elapsed: time.Since(s).Microseconds()}
}

// SiblingClean records the deterministic field of a mixed struct — one
// level of field sensitivity keeps this quiet.
func SiblingClean(c *simtrace.Counter) {
	r := measure()
	c.Add(r.Matches)
}

// SiblingTainted records the host-derived field of the same struct.
func SiblingTainted(c *simtrace.Counter) {
	r := measure()
	c.Add(r.Elapsed) // want hosttime-taint
}

// Env feeds ambient host environment state into a gauge.
func Env(g *simtrace.Gauge) {
	g.Observe(int64(len(envName()))) // want hosttime-taint
}

func envName() string {
	return os.Getenv("TAINTFIX_MODE")
}
