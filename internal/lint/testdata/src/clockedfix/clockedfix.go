// Package clockedfix is a known-bad fixture for the clocked-component
// analyzer: types with a Tick/Cycle method must not hold host-time state,
// read the host clock, or spawn goroutines inside the tick.
package clockedfix

import "time"

// BadClock mixes host time into a clocked component in every way the
// analyzer forbids.
type BadClock struct {
	Last    time.Time     // want clocked-component
	Timeout time.Duration // want clocked-component
	Cycles  int64
}

// Tick reads the wall clock and spawns a goroutine on the clock edge.
func (b *BadClock) Tick() {
	b.Last = time.Now() // want clocked-component
	go func() {         // want clocked-component
		b.Cycles++
	}()
}

// SneakyTimer hides the Duration inside a nested struct.
type SneakyTimer struct {
	state struct { // want clocked-component
		deadline time.Duration
	}
	Cycles int64
}

// Cycle is the alternate marker method name.
func (s *SneakyTimer) Cycle() {
	s.Cycles++
}

// GoodClock is a compliant clocked component: simulated time only.
type GoodClock struct {
	Cycles  int64
	Tokens  float64
	PerCyc  float64
	clockHz float64
}

// Tick accrues token budget, like the QPI end-point.
func (g *GoodClock) Tick() {
	g.Cycles++
	g.Tokens += g.PerCyc
}

// Elapsed converts cycle counts for reporting — fine outside the tick.
func (g *GoodClock) Elapsed() time.Duration {
	return time.Duration(float64(g.Cycles) / g.clockHz * float64(time.Second))
}
