// Package benchfix is a known-bad fixture for the bench-json analyzer:
// every `// want <analyzer>` comment marks a line the analyzer must flag.
// The fixture is loaded under a synthetic BENCH-write-path import path by
// the tests; it never builds as part of the module.
package benchfix

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Metric mimics a BENCH record shape.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// WriteMarshal serializes through the reflective marshaler — the byte layout
// is owned by the Go release, not this repo, so the gate would trip on a
// toolchain bump rather than a real regression.
func WriteMarshal(w io.Writer, m Metric) error {
	data, err := json.Marshal(m) // want bench-json
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteIndent is the same violation through MarshalIndent.
func WriteIndent(m Metric) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ") // want bench-json
}

// WriteEncoder is the same violation through the streaming encoder.
func WriteEncoder(w io.Writer, m Metric) error {
	enc := json.NewEncoder(w) // want bench-json
	return enc.Encode(m)      // want bench-json
}

// WriteFieldByFieldOK is the approved pattern: every byte of the layout is
// spelled out in the repo's own source.
func WriteFieldByFieldOK(w io.Writer, m Metric) error {
	_, err := fmt.Fprintf(w, "{\"name\": %q, \"value\": %d}", m.Name, m.Value)
	return err
}

// ParseOK uses the read side, which is not byte-layout-sensitive and is
// explicitly allowed.
func ParseOK(data []byte) (Metric, error) {
	var m Metric
	err := json.Unmarshal(data, &m)
	return m, err
}

// DecodeOK streams the read side through a Decoder.
func DecodeOK(data []byte) (Metric, error) {
	var m Metric
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&m)
	return m, err
}
