package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotpathAlloc turns the repo's AllocsPerRun guards into a static contract.
// The dynamic guards (simtrace's TestHotPathDoesNotAllocate, the histogram
// nil-receiver test) prove a handful of entry points allocation-free at one
// Go version on one machine; this analyzer closes the same property over
// the whole call graph: every function reachable from a hot root may not
// contain a construct the compiler must heap-allocate per call. Hot roots
// are
//
//   - every module-declared Tick/Cycle method (the per-cycle edge of every
//     clocked component),
//   - a configured list of known hot entry points (the simtrace
//     instrumentation calls the AllocsPerRun tests cover),
//   - any function whose doc comment carries a //fpgavet:hotpath marker.
//
// Flagged constructs, each a guaranteed or near-guaranteed allocation:
//
//   - &T{…} and slice/map composite literals, make and new — heap objects
//     (make([]T,0,n) hoisted to construction time is the idiom; per-cycle
//     state must be preallocated);
//   - passing a concrete value to an interface parameter — interface boxing
//     allocates for any non-pointer-shaped value (the one panic-argument
//     exception: a panicking tick is already a simulator fault, its message
//     may box);
//   - any fmt call — fmt boxes every operand and walks reflection (again
//     excepting panic arguments, where fmt.Sprintf builds the fault text);
//   - function literals capturing enclosing variables — the closure header
//     is heap-allocated at creation;
//   - append to a slice that provably starts empty in this function
//     (var s []T, s := []T{}) — growth reallocates on the hot path; origins
//     this analyzer cannot see (fields, parameters) are trusted to be
//     presized at construction.
//
// Like the rest of the engine this over-approximates reachability (a
// funcvalue edge may never be invoked) and under-approximates escape (a
// value struct literal that escapes via a pointer is not flagged); both
// limits are recorded in DESIGN.md §14.
type HotpathAlloc struct {
	// RootMethods marks every module method with one of these names hot.
	RootMethods map[string]bool
	// Roots are fully-qualified hot entry points, in the call-graph node
	// notation pkgpath.Func or pkgpath.Recv.Method.
	Roots map[string]bool
	// Marker is the doc-comment directive declaring a function hot.
	Marker string
}

// HotPathRoots are the known hot entry points outside Tick/Cycle methods:
// the simtrace instrumentation calls covered by the AllocsPerRun guards.
var HotPathRoots = []string{
	"fpgapart/internal/simtrace.Counter.Add",
	"fpgapart/internal/simtrace.Counter.Inc",
	"fpgapart/internal/simtrace.Gauge.Observe",
	"fpgapart/internal/simtrace.Histogram.Observe",
	"fpgapart/internal/simtrace.Tracer.Span",
	"fpgapart/internal/simtrace.Tracer.Instant",
	"fpgapart/internal/simtrace.Tracer.Sample",
	"fpgapart/internal/reqtrace.Recorder.Admit",
	"fpgapart/internal/reqtrace.Recorder.Attempt",
	"fpgapart/internal/reqtrace.Recorder.Finish",
	"fpgapart/internal/reqtrace.Recorder.Event",
	"fpgapart/internal/reqtrace.Flight.Record",
}

// DefaultHotpathAlloc returns the analyzer with the project's hot roots.
func DefaultHotpathAlloc() *HotpathAlloc {
	roots := make(map[string]bool, len(HotPathRoots))
	for _, r := range HotPathRoots {
		roots[r] = true
	}
	return &HotpathAlloc{
		RootMethods: map[string]bool{"Tick": true, "Cycle": true},
		Roots:       roots,
		Marker:      "fpgavet:hotpath",
	}
}

func (*HotpathAlloc) Name() string { return "hotpath-alloc" }

func (*HotpathAlloc) Doc() string {
	return "functions reachable from Tick/Cycle methods, configured roots, or //fpgavet:hotpath markers contain no per-call heap allocations"
}

// Check implements Analyzer; hotpath-alloc only runs at module scope.
func (*HotpathAlloc) Check(*Package) []Finding { return nil }

// CheckModule implements ModuleAnalyzer.
func (h *HotpathAlloc) CheckModule(mod *Module) []Finding {
	g := mod.Graph

	// Hot set: roots plus everything reachable from them. rootOf remembers
	// the root that first pulled each function in, for the finding message.
	rootOf := map[*Node]*Node{}
	var hot []*Node
	for _, n := range g.Nodes() {
		if !h.isRoot(n) {
			continue
		}
		g.Reach(n, nil, nil, func(_ []*Edge, m *Node) bool {
			if m.Decl == nil || m.Pkg == nil {
				return true // bodyless leaf: nothing to check below it either
			}
			if _, seen := rootOf[m]; !seen {
				rootOf[m] = n
				hot = append(hot, m)
			}
			return true
		})
	}

	var out []Finding
	for _, n := range hot {
		out = append(out, h.checkHot(n, rootOf[n])...)
	}
	return out
}

// isRoot reports whether n is a hot root by method name, configured name,
// or doc-comment marker.
func (h *HotpathAlloc) isRoot(n *Node) bool {
	if n.Decl == nil || n.Pkg == nil {
		return false
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && h.RootMethods[n.Fn.Name()] {
		return true
	}
	if h.Roots[n.String()] {
		return true
	}
	if n.Decl.Doc != nil && h.Marker != "" {
		for _, c := range n.Decl.Doc.List {
			if strings.Contains(c.Text, h.Marker) {
				return true
			}
		}
	}
	return false
}

// checkHot scans one hot function's body for allocating constructs.
func (h *HotpathAlloc) checkHot(n *Node, root *Node) []Finding {
	pkg := n.Pkg
	ctx := "on the hot path from " + root.String()
	if root == n {
		ctx = "a hot-path root"
	}

	// Panic arguments are exempt everywhere: a panicking tick is already a
	// simulator fault, so its message may allocate freely.
	var panicArgs []ast.Expr
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok && pkg.isPanicCall(call) {
			panicArgs = append(panicArgs, call.Args...)
		}
		return true
	})
	exempt := func(node ast.Node) bool {
		if node == nil {
			return false
		}
		for _, a := range panicArgs {
			if node.Pos() >= a.Pos() && node.End() <= a.End() {
				return true
			}
		}
		return false
	}

	emptySlices := h.emptySliceVars(n)

	var out []Finding
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if exempt(node) {
			return false
		}
		switch node := node.(type) {
		case *ast.UnaryExpr:
			if lit, ok := node.X.(*ast.CompositeLit); ok {
				out = append(out, pkg.findingNode(h.Name(), node,
					"%s %s takes the address of a composite literal (heap allocation per call) — preallocate the %s at construction time",
					n.String(), ctx, typeString(pkg.Info.TypeOf(lit))))
				return false
			}
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(node)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					out = append(out, pkg.findingNode(h.Name(), node,
						"%s %s builds a %s literal (heap allocation per call) — preallocate at construction time",
						n.String(), ctx, typeString(t)))
					return false
				}
			}
		case *ast.FuncLit:
			if captured := capturedVars(pkg, node); len(captured) > 0 {
				out = append(out, pkg.findingNode(h.Name(), node,
					"%s %s creates a closure capturing %s (heap-allocated closure header per call) — hoist the state into the receiver or pass it as arguments",
					n.String(), ctx, strings.Join(captured, ", ")))
			}
		case *ast.CallExpr:
			out = append(out, h.checkCall(pkg, n, node, ctx, emptySlices)...)
		}
		return true
	})
	return out
}

// checkCall flags make/new, fmt calls, interface boxing at arguments, and
// append to provably-empty local slices.
func (h *HotpathAlloc) checkCall(pkg *Package, n *Node, call *ast.CallExpr, ctx string, emptySlices map[*types.Var]bool) []Finding {
	var out []Finding

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				f := pkg.findingNode(h.Name(), call,
					"%s %s calls %s (heap allocation per call) — allocate at construction time and reuse",
					n.String(), ctx, b.Name())
				return []Finding{f}
			case "append":
				if len(call.Args) > 0 {
					if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, ok := pkg.Info.Uses[target].(*types.Var); ok && emptySlices[v] {
							f := pkg.findingNode(h.Name(), call,
								"%s %s appends to %s, which starts empty in this function — every growth reallocates; presize with make(…, 0, n) at construction",
								n.String(), ctx, target.Name)
							return []Finding{f}
						}
					}
				}
				return nil
			default:
				return nil
			}
		}
	}

	// fmt on the hot path boxes every operand and walks reflection.
	if fn, ok := pkg.objectOf(call.Fun).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		f := pkg.findingNode(h.Name(), call,
			"%s %s calls fmt.%s — fmt boxes every operand and allocates; format off the hot path or record raw values",
			n.String(), ctx, fn.Name())
		return []Finding{f}
	}

	// Interface boxing: a concrete argument passed to an interface
	// parameter allocates for any value the runtime cannot pack inline.
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return out // conversion or builtin, handled above
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pkg.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue // interface-to-interface: no new box
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, pkg.findingNode(h.Name(), arg,
			"%s %s boxes %s into interface %s (heap allocation per call) — keep hot-path signatures concrete",
			n.String(), ctx, typeString(at), typeString(pt)))
	}
	// Variadic interface calls with no args beyond the fixed ones, and
	// sites that only box via conversion in returns, are out of scope.
	return out
}

// emptySliceVars collects local slice variables that provably start empty:
// declared `var s []T` with no initializer, or `s := []T{}`.
func (h *HotpathAlloc) emptySliceVars(n *Node) map[*types.Var]bool {
	pkg := n.Pkg
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.DeclStmt:
			gd, ok := node.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if node.Tok.String() != ":=" || len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if lit, ok := ast.Unparen(node.Rhs[i]).(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
					if t := pkg.Info.TypeOf(lit); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							mark(id)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// capturedVars lists (sorted by first use) the enclosing-scope variables a
// function literal captures. Package-level variables and the literal's own
// parameters and locals do not count.
func capturedVars(pkg *Package, fl *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(fl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pkg() != pkg.Types {
			return true
		}
		// Package-level variables live in the package scope — not captures.
		if v.Parent() == pkg.Types.Scope() {
			return true
		}
		// Declared inside the literal (params or locals): not a capture.
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}
