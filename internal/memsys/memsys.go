// Package memsys models the shared-memory machinery of the Xeon+FPGA
// platform (Section 2.1): a pool of 4 MB pages allocated through the Intel
// API, a software-visible array of page addresses on the CPU side, and a
// fully pipelined page table built from BRAMs on the FPGA side that
// translates the accelerator's virtual addresses to 32-bit physical
// addresses in 2 clock cycles.
//
// It also tracks, per 64-byte cache line, which socket wrote last — the
// state the QPI snoop filter keeps and the cause of the asymmetric read
// penalties of Table 1 (Section 2.2).
package memsys

import (
	"fmt"

	"fpgapart/platform"
)

// LineBytes is the cache-line granularity of all QPI transfers.
const LineBytes = 64

// Pool is a physical memory pool carved into fixed-size pages.
type Pool struct {
	pageBytes int
	numPages  int
	nextFree  int
}

// NewPool returns a pool of totalBytes physical memory in pages of pageBytes
// (4 MB on the paper's platform).
func NewPool(totalBytes int64, pageBytes int) (*Pool, error) {
	if pageBytes <= 0 || pageBytes%LineBytes != 0 {
		return nil, fmt.Errorf("memsys: page size %d must be a positive multiple of %d", pageBytes, LineBytes)
	}
	if totalBytes < int64(pageBytes) {
		return nil, fmt.Errorf("memsys: pool of %d bytes smaller than one page", totalBytes)
	}
	return &Pool{pageBytes: pageBytes, numPages: int(totalBytes / int64(pageBytes))}, nil
}

// PageBytes returns the page size.
func (p *Pool) PageBytes() int { return p.pageBytes }

// FreePages returns how many pages remain unallocated.
func (p *Pool) FreePages() int { return p.numPages - p.nextFree }

// FreeBytes returns the unallocated capacity in bytes. The budgeted join
// executor sizes its byte-level ledger (internal/membudget) from the
// page-level pool that models the platform's physical memory: a
// membudget.Budget capped at FreeBytes keeps every build-side allocation
// within what the pool could actually back with pages.
func (p *Pool) FreeBytes() int64 { return int64(p.FreePages()) * int64(p.pageBytes) }

// Alloc allocates enough pages to cover size bytes and returns a Region. The
// physical page frame numbers are handed to the region in allocation order;
// like the Intel API, the software keeps this array and the FPGA's page
// table is populated from it.
func (p *Pool) Alloc(size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("memsys: allocation of %d bytes", size)
	}
	pages := int((size + int64(p.pageBytes) - 1) / int64(p.pageBytes))
	if pages > p.FreePages() {
		return nil, fmt.Errorf("memsys: out of memory: need %d pages, %d free", pages, p.FreePages())
	}
	r := &Region{
		pool:  p,
		Size:  size,
		Pages: make([]uint32, pages),
		owner: make([]uint8, (size+LineBytes-1)/LineBytes),
	}
	for i := range r.Pages {
		r.Pages[i] = uint32(p.nextFree)
		p.nextFree++
	}
	return r, nil
}

// Region is a virtually contiguous allocation backed by physical pages. The
// virtual address space of a region starts at 0 (each accelerator run works
// on a fixed-size virtual address space, Section 2.1).
type Region struct {
	pool *Pool
	Size int64
	// Pages[v] is the physical page frame number of virtual page v — the
	// array the CPU-side application keeps for its own address translation.
	Pages []uint32
	owner []uint8 // last writer per cache line
}

// Translate performs the CPU-side translation: a look-up into the page array.
func (r *Region) Translate(vaddr int64) (uint64, error) {
	if vaddr < 0 || vaddr >= r.Size {
		return 0, fmt.Errorf("memsys: virtual address %#x outside region of %d bytes", vaddr, r.Size)
	}
	page := vaddr / int64(r.pool.pageBytes)
	off := vaddr % int64(r.pool.pageBytes)
	return uint64(r.Pages[page])*uint64(r.pool.pageBytes) + uint64(off), nil
}

// MarkWritten records socket as the last writer of every cache line in
// [off, off+n). This is the snoop-filter state update: it happens on writes
// only, never on reads (Section 2.2).
func (r *Region) MarkWritten(s platform.Socket, off, n int64) error {
	if off < 0 || n < 0 || off+n > r.Size {
		return fmt.Errorf("memsys: write [%d, %d) outside region of %d bytes", off, off+n, r.Size)
	}
	first := off / LineBytes
	last := (off + n + LineBytes - 1) / LineBytes
	for i := first; i < last; i++ {
		r.owner[i] = uint8(s)
	}
	return nil
}

// Owner returns the last writer of the cache line containing off.
func (r *Region) Owner(off int64) platform.Socket {
	return platform.Socket(r.owner[off/LineBytes])
}

// OwnerCounts returns how many cache lines each socket wrote last.
func (r *Region) OwnerCounts() (cpu, fpga int) {
	for _, o := range r.owner {
		if platform.Socket(o) == platform.FPGASocket {
			fpga++
		} else {
			cpu++
		}
	}
	return cpu, fpga
}

// PageTableLatency is the pipelined translation latency in FPGA clock
// cycles. The translation takes 2 cycles but is pipelined, so throughput
// remains one address per cycle (Section 2.1).
const PageTableLatency = 2

// PageTable is the FPGA-side page table: a BRAM-resident map from virtual
// page number to physical page frame number. Its size is adjustable so the
// entire main memory can be addressed (the reason the paper builds its own
// instead of using Intel's extended end-point, which caps allocations at
// 2 GB and loses 20% bandwidth).
type PageTable struct {
	pageBytes int
	entries   []uint32
	valid     []bool

	// Translations counts completed look-ups, for throughput verification.
	Translations int64
}

// NewPageTable returns a table with capacity virtual pages of pageBytes each.
func NewPageTable(pageBytes, capacity int) (*PageTable, error) {
	if pageBytes <= 0 || capacity <= 0 {
		return nil, fmt.Errorf("memsys: invalid page table shape %d×%d", capacity, pageBytes)
	}
	return &PageTable{
		pageBytes: pageBytes,
		entries:   make([]uint32, capacity),
		valid:     make([]bool, capacity),
	}, nil
}

// Populate loads the region's physical page numbers into the table, the
// start-up step where the software transmits the 32-bit physical addresses
// of its 4 MB pages to the FPGA.
func (t *PageTable) Populate(r *Region) error {
	if len(r.Pages) > len(t.entries) {
		return fmt.Errorf("memsys: region needs %d page table entries, table has %d", len(r.Pages), len(t.entries))
	}
	for v, p := range r.Pages {
		t.entries[v] = p
		t.valid[v] = true
	}
	return nil
}

// Translate maps an accelerator virtual address to a physical address. A
// miss (unmapped page) is a fault: the real hardware has no miss path, so the
// simulator surfaces it as an error.
func (t *PageTable) Translate(vaddr int64) (uint64, error) {
	if vaddr < 0 {
		return 0, fmt.Errorf("memsys: negative virtual address %#x", vaddr)
	}
	page := vaddr / int64(t.pageBytes)
	if page >= int64(len(t.entries)) || !t.valid[page] {
		return 0, fmt.Errorf("memsys: page fault at virtual address %#x (page %d unmapped)", vaddr, page)
	}
	t.Translations++
	off := vaddr % int64(t.pageBytes)
	return uint64(t.entries[page])*uint64(t.pageBytes) + uint64(off), nil
}

// Capacity returns the number of virtual pages the table can map.
func (t *PageTable) Capacity() int { return len(t.entries) }
