package memsys

import (
	"testing"
	"testing/quick"

	"fpgapart/platform"
)

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(1<<30, 0); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewPool(1<<30, 100); err == nil {
		t.Error("non-line-multiple page size accepted")
	}
	if _, err := NewPool(100, 4<<20); err == nil {
		t.Error("pool smaller than a page accepted")
	}
}

func TestAllocConsumesPages(t *testing.T) {
	p, err := NewPool(64<<20, 4<<20) // 16 pages
	if err != nil {
		t.Fatal(err)
	}
	if p.FreePages() != 16 {
		t.Fatalf("FreePages = %d, want 16", p.FreePages())
	}
	r, err := p.Alloc(9 << 20) // needs 3 pages
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pages) != 3 {
		t.Errorf("region pages = %d, want 3", len(r.Pages))
	}
	if p.FreePages() != 13 {
		t.Errorf("FreePages = %d, want 13", p.FreePages())
	}
	if got := p.FreeBytes(); got != 13*(4<<20) {
		t.Errorf("FreeBytes = %d, want %d", got, 13*(4<<20))
	}
	if _, err := p.Alloc(1 << 30); err == nil {
		t.Error("oversized allocation accepted")
	}
	if _, err := p.Alloc(0); err == nil {
		t.Error("zero allocation accepted")
	}
}

func TestRegionTranslate(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(12 << 20)
	// Page 0 starts at physical page r.Pages[0].
	pa, err := r.Translate(0)
	if err != nil {
		t.Fatal(err)
	}
	if pa != uint64(r.Pages[0])*(4<<20) {
		t.Errorf("Translate(0) = %#x", pa)
	}
	// An address in the second page.
	pa, err = r.Translate(4<<20 + 123)
	if err != nil {
		t.Fatal(err)
	}
	if pa != uint64(r.Pages[1])*(4<<20)+123 {
		t.Errorf("Translate(page1+123) = %#x", pa)
	}
	if _, err := r.Translate(-1); err == nil {
		t.Error("negative address translated")
	}
	if _, err := r.Translate(12 << 20); err == nil {
		t.Error("out-of-region address translated")
	}
}

func TestMarkWrittenAndOwner(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(1 << 20)
	// Fresh regions belong to the CPU socket (value 0).
	if r.Owner(0) != platform.CPUSocket {
		t.Errorf("fresh owner = %v", r.Owner(0))
	}
	if err := r.MarkWritten(platform.FPGASocket, 64, 128); err != nil {
		t.Fatal(err)
	}
	if r.Owner(0) != platform.CPUSocket {
		t.Error("line 0 should remain CPU-owned")
	}
	if r.Owner(64) != platform.FPGASocket || r.Owner(191) != platform.FPGASocket {
		t.Error("written lines should be FPGA-owned")
	}
	if r.Owner(192) != platform.CPUSocket {
		t.Error("line after write should remain CPU-owned")
	}
	cpu, fpga := r.OwnerCounts()
	if fpga != 2 || cpu != (1<<20)/64-2 {
		t.Errorf("OwnerCounts = %d, %d", cpu, fpga)
	}
}

func TestMarkWrittenPartialLine(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(1 << 20)
	// A 1-byte write dirties the whole containing line (coherence is
	// line-granular).
	if err := r.MarkWritten(platform.FPGASocket, 100, 1); err != nil {
		t.Fatal(err)
	}
	if r.Owner(64) != platform.FPGASocket {
		t.Error("partial write should mark the containing line")
	}
}

func TestMarkWrittenBounds(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(1 << 20)
	if err := r.MarkWritten(platform.CPUSocket, -1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if err := r.MarkWritten(platform.CPUSocket, 0, 2<<20); err == nil {
		t.Error("overlong write accepted")
	}
}

func TestPageTablePopulateAndTranslate(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(8 << 20)
	pt, err := NewPageTable(4<<20, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Capacity() != 16 {
		t.Errorf("Capacity = %d", pt.Capacity())
	}
	if err := pt.Populate(r); err != nil {
		t.Fatal(err)
	}
	// FPGA and CPU translations must agree on every address.
	f := func(raw uint32) bool {
		va := int64(raw) % (8 << 20)
		fa, err1 := pt.Translate(va)
		ca, err2 := r.Translate(va)
		return err1 == nil && err2 == nil && fa == ca
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if pt.Translations == 0 {
		t.Error("translation counter not advancing")
	}
}

func TestPageTableFaults(t *testing.T) {
	pt, _ := NewPageTable(4<<20, 4)
	if _, err := pt.Translate(0); err == nil {
		t.Error("unmapped page translated")
	}
	if _, err := pt.Translate(-5); err == nil {
		t.Error("negative address translated")
	}
	if _, err := pt.Translate(1 << 40); err == nil {
		t.Error("beyond-capacity address translated")
	}
}

func TestPageTableTooSmallForRegion(t *testing.T) {
	p, _ := NewPool(64<<20, 4<<20)
	r, _ := p.Alloc(16 << 20) // 4 pages
	pt, _ := NewPageTable(4<<20, 2)
	if err := pt.Populate(r); err == nil {
		t.Error("populate into undersized table accepted")
	}
}

func TestNewPageTableValidation(t *testing.T) {
	if _, err := NewPageTable(0, 4); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewPageTable(4<<20, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestPageTableLatencyConstant(t *testing.T) {
	// Section 2.1: translation takes 2 cycles but is pipelined.
	if PageTableLatency != 2 {
		t.Errorf("PageTableLatency = %d, want 2", PageTableLatency)
	}
}
