// Package cpupart implements the software data partitioners of Section 3:
// the state-of-the-art single-pass radix/hash partitioner with
// software-managed cache-resident buffers (Code 2, following Balkesen et
// al.), the naive tuple-at-a-time scatter (Code 1), and a Manegold-style
// multi-pass partitioner that limits per-pass fan-out. These run for real on
// the host CPU and are measured, not simulated — they are the baseline the
// FPGA circuit is compared against.
//
// The partitioners operate on 8-byte tuples (<4B key, 4B payload> packed
// into a uint64), the layout of all the paper's CPU experiments.
package cpupart

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

// Algorithm selects the partitioning strategy.
type Algorithm int

const (
	// Buffered is Code 2: one pass with per-partition software-managed
	// write-combining buffers, preceded by a histogram pass for
	// synchronization-free parallel output.
	Buffered Algorithm = iota
	// Naive is Code 1: tuple-at-a-time scatter straight to the output,
	// trashing TLB and caches at high fan-outs.
	Naive
	// MultiPass limits each pass's fan-out (Manegold et al.): partitions
	// in two passes when the fan-out exceeds the per-pass limit.
	MultiPass
)

func (a Algorithm) String() string {
	switch a {
	case Buffered:
		return "buffered"
	case Naive:
		return "naive"
	case MultiPass:
		return "multipass"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// BufferTuples is the software-managed buffer size: 8 tuples × 8 bytes =
// one 64-byte cache line, flushed with a single copy that stands in for the
// non-temporal SIMD store of Wassenberg et al.
const BufferTuples = 8

// maxFanOutPerPass bounds a single pass of the MultiPass algorithm, chosen
// to stay within typical TLB coverage.
const maxFanOutPerPass = 512

// Config describes a partitioning run.
type Config struct {
	NumPartitions int
	// Hash selects murmur hash partitioning; false selects radix bits.
	Hash bool
	// Threads is the parallelism (≤ 0 means GOMAXPROCS).
	Threads   int
	Algorithm Algorithm
	// Salt is XORed into the key before hashing, so a recursive
	// repartitioning pass (membudget spill recovery) splits a bucket whose
	// keys already agree on the parent's hash bits. Only effective with
	// Hash — radix partitioning of key^salt permutes bucket labels without
	// separating keys that share low bits — and zero for top-level passes.
	Salt uint32
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	return cfg
}

func (c *Config) validate() error {
	if !hashutil.IsPowerOfTwo(c.NumPartitions) || c.NumPartitions < 2 {
		return fmt.Errorf("cpupart: NumPartitions %d must be a power of two ≥ 2", c.NumPartitions)
	}
	return nil
}

// Result is a partitioned relation: tuples stored contiguously by
// partition, with exact (dummy-free) boundaries.
type Result struct {
	NumPartitions int
	// Data holds the shuffled tuples; partition p is
	// Data[Offsets[p]:Offsets[p+1]].
	Data []uint64
	// Offsets has NumPartitions+1 entries (prefix sum of the histogram).
	Offsets []int64
	// Elapsed is the measured wall time of the partitioning.
	Elapsed time.Duration
	Threads int
}

// Count returns the number of tuples in partition p.
func (r *Result) Count(p int) int64 { return r.Offsets[p+1] - r.Offsets[p] }

// Partition returns partition p's tuples.
func (r *Result) Partition(p int) []uint64 { return r.Data[r.Offsets[p]:r.Offsets[p+1]] }

// Partition partitions rel (which must be a row-layout relation of 8-byte
// tuples) according to cfg.
func Partition(rel *workload.Relation, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rel.Layout != workload.RowLayout || rel.Width != 8 {
		return nil, fmt.Errorf("cpupart: need row-layout 8-byte tuples, got %v %dB", rel.Layout, rel.Width)
	}
	cfg = cfg.withDefaults()
	src := rel.Data
	start := time.Now()
	var res *Result
	var err error
	switch cfg.Algorithm {
	case Buffered:
		res, err = bufferedPartition(src, cfg)
	case Naive:
		res, err = naivePartition(src, cfg)
	case MultiPass:
		res, err = multiPassPartition(src, cfg)
	default:
		return nil, fmt.Errorf("cpupart: unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.Threads = cfg.Threads
	return res, nil
}

// PartitionTuples partitions a raw slice of packed 8-byte tuples according
// to cfg, without a Relation wrapper. It backs the recursive repartitioning
// passes of the budgeted join, which operate on spilled tuple runs; src is
// not modified.
func PartitionTuples(src []uint64, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	var res *Result
	var err error
	switch cfg.Algorithm {
	case Buffered:
		res, err = bufferedPartition(src, cfg)
	case Naive:
		res, err = naivePartition(src, cfg)
	case MultiPass:
		res, err = multiPassPartition(src, cfg)
	default:
		return nil, fmt.Errorf("cpupart: unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	res.Threads = cfg.Threads
	return res, nil
}

// partIndex computes the partition of a packed tuple. It runs once per
// tuple inside every partitioning inner loop, so it is pinned allocation-free.
//
//fpgavet:hotpath
func partIndex(t uint64, bits uint, hash bool) uint32 {
	return hashutil.PartitionIndex32(uint32(t), bits, hash)
}

// index computes the partition of a packed tuple under the config's hash
// function and salt — per-tuple inner-loop code, pinned allocation-free.
//
//fpgavet:hotpath
func (c Config) index(t uint64, bits uint) uint32 {
	return hashutil.PartitionIndex32(uint32(t)^c.Salt, bits, c.Hash)
}

// chunkBounds splits n items into t contiguous chunks.
func chunkBounds(n, t int) []int {
	bounds := make([]int, t+1)
	for i := 0; i <= t; i++ {
		bounds[i] = n * i / t
	}
	return bounds
}

// bufferedPartition is the parallel Code 2 implementation: per-thread
// histograms, a global prefix sum assigning each thread a private slice of
// every partition, then a buffered shuffle pass.
func bufferedPartition(src []uint64, cfg Config) (*Result, error) {
	p := cfg.NumPartitions
	bits := hashutil.Log2(p)
	threads := cfg.Threads
	n := len(src)
	bounds := chunkBounds(n, threads)

	// Pass 1: per-thread histograms.
	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, p)
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				h[cfg.index(tup, bits)]++
			}
			hists[t] = h
		}(t)
	}
	wg.Wait()

	// Prefix sums: partition offsets, then per-thread write cursors.
	offsets := make([]int64, p+1)
	for i := 0; i < p; i++ {
		var sum int64
		for t := 0; t < threads; t++ {
			sum += hists[t][i]
		}
		offsets[i+1] = offsets[i] + sum
	}
	cursors := make([][]int64, threads)
	for t := 0; t < threads; t++ {
		cursors[t] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		pos := offsets[i]
		for t := 0; t < threads; t++ {
			cursors[t][i] = pos
			pos += hists[t][i]
		}
	}

	// Pass 2: buffered shuffle into private destination ranges — no
	// synchronization needed, the reason the CPU algorithm builds the
	// histogram "out of necessity" (Section 4.7).
	dst := make([]uint64, n)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			buf := make([]uint64, p*BufferTuples)
			fill := make([]uint8, p)
			cur := cursors[t]
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				i := cfg.index(tup, bits)
				f := fill[i]
				buf[int(i)*BufferTuples+int(f)] = tup
				f++
				if f == BufferTuples {
					// Flush one cache line's worth; with SIMD this would
					// be a non-temporal streaming store.
					copy(dst[cur[i]:cur[i]+BufferTuples], buf[int(i)*BufferTuples:int(i+1)*BufferTuples])
					cur[i] += BufferTuples
					f = 0
				}
				fill[i] = f
			}
			// Flush partial buffers.
			for i := 0; i < p; i++ {
				f := int64(fill[i])
				if f > 0 {
					copy(dst[cur[i]:cur[i]+f], buf[i*BufferTuples:i*BufferTuples+int(f)])
					cur[i] += f
				}
			}
		}(t)
	}
	wg.Wait()

	return &Result{NumPartitions: p, Data: dst, Offsets: offsets}, nil
}

// naivePartition is Code 1 run on cfg.Threads threads with the same
// histogram-based synchronization but no write combining.
func naivePartition(src []uint64, cfg Config) (*Result, error) {
	p := cfg.NumPartitions
	bits := hashutil.Log2(p)
	threads := cfg.Threads
	n := len(src)
	bounds := chunkBounds(n, threads)

	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, p)
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				h[cfg.index(tup, bits)]++
			}
			hists[t] = h
		}(t)
	}
	wg.Wait()

	offsets := make([]int64, p+1)
	for i := 0; i < p; i++ {
		var sum int64
		for t := 0; t < threads; t++ {
			sum += hists[t][i]
		}
		offsets[i+1] = offsets[i] + sum
	}
	cursors := make([][]int64, threads)
	for t := 0; t < threads; t++ {
		cursors[t] = make([]int64, p)
	}
	for i := 0; i < p; i++ {
		pos := offsets[i]
		for t := 0; t < threads; t++ {
			cursors[t][i] = pos
			pos += hists[t][i]
		}
	}

	dst := make([]uint64, n)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cur := cursors[t]
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				i := cfg.index(tup, bits)
				dst[cur[i]] = tup
				cur[i]++
			}
		}(t)
	}
	wg.Wait()
	return &Result{NumPartitions: p, Data: dst, Offsets: offsets}, nil
}

// multiPassPartition splits the fan-out across two passes when it exceeds
// maxFanOutPerPass: a coarse pass on the high bits of the partition index,
// then an in-place refinement of each coarse partition on the low bits.
func multiPassPartition(src []uint64, cfg Config) (*Result, error) {
	p := cfg.NumPartitions
	if p <= maxFanOutPerPass {
		return naivePartition(src, cfg)
	}
	bits := hashutil.Log2(p)
	coarse := maxFanOutPerPass
	coarseBits := hashutil.Log2(coarse)
	fine := p / coarse

	// Pass 1: partition by the HIGH bits of the final partition index, so
	// that each coarse bucket holds a contiguous range of final partitions.
	cfg1 := cfg
	cfg1.NumPartitions = coarse
	first, err := partitionByIndex(src, cfg1.Threads, coarse, func(t uint64) uint32 {
		return cfg.index(t, bits) >> (bits - coarseBits)
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: refine every coarse bucket by the low bits, in parallel.
	dst := make([]uint64, len(src))
	offsets := make([]int64, p+1)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Threads)
	fineOffsets := make([][]int64, coarse)
	for c := 0; c < coarse; c++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(c int) {
			defer wg.Done()
			defer func() { <-sem }()
			seg := first.Data[first.Offsets[c]:first.Offsets[c+1]]
			out := dst[first.Offsets[c]:first.Offsets[c+1]]
			lowBits := bits - coarseBits
			hist := make([]int64, fine)
			for _, tup := range seg {
				hist[cfg.index(tup, bits)&(1<<lowBits-1)]++
			}
			offs := make([]int64, fine+1)
			for i := 0; i < fine; i++ {
				offs[i+1] = offs[i] + hist[i]
			}
			cur := append([]int64(nil), offs[:fine]...)
			for _, tup := range seg {
				i := cfg.index(tup, bits) & (1<<lowBits - 1)
				out[cur[i]] = tup
				cur[i]++
			}
			fineOffsets[c] = offs
		}(c)
	}
	wg.Wait()
	for c := 0; c < coarse; c++ {
		base := first.Offsets[c]
		for i := 0; i < fine; i++ {
			offsets[c*fine+i+1] = base + fineOffsets[c][i+1]
		}
	}
	return &Result{NumPartitions: p, Data: dst, Offsets: offsets}, nil
}

// partitionByIndex is a parallel scatter by an arbitrary index function.
func partitionByIndex(src []uint64, threads, parts int, idx func(uint64) uint32) (*Result, error) {
	n := len(src)
	bounds := chunkBounds(n, threads)
	hists := make([][]int64, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			h := make([]int64, parts)
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				h[idx(tup)]++
			}
			hists[t] = h
		}(t)
	}
	wg.Wait()
	offsets := make([]int64, parts+1)
	for i := 0; i < parts; i++ {
		var sum int64
		for t := 0; t < threads; t++ {
			sum += hists[t][i]
		}
		offsets[i+1] = offsets[i] + sum
	}
	cursors := make([][]int64, threads)
	for t := 0; t < threads; t++ {
		cursors[t] = make([]int64, parts)
	}
	for i := 0; i < parts; i++ {
		pos := offsets[i]
		for t := 0; t < threads; t++ {
			cursors[t][i] = pos
			pos += hists[t][i]
		}
	}
	dst := make([]uint64, n)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			cur := cursors[t]
			for _, tup := range src[bounds[t]:bounds[t+1]] {
				i := idx(tup)
				dst[cur[i]] = tup
				cur[i]++
			}
		}(t)
	}
	wg.Wait()
	return &Result{NumPartitions: parts, Data: dst, Offsets: offsets}, nil
}
