package cpupart

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

func genRel(t *testing.T, d workload.Distribution, n int, seed int64) *workload.Relation {
	t.Helper()
	rel, err := workload.NewGenerator(seed).Relation(d, 8, n)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// checkPartitioned verifies that every tuple sits in its correct partition
// and that the output is a permutation of the input.
func checkPartitioned(t *testing.T, rel *workload.Relation, res *Result, hash bool) {
	t.Helper()
	bits := hashutil.Log2(res.NumPartitions)
	if res.Offsets[res.NumPartitions] != int64(rel.NumTuples) {
		t.Fatalf("offsets end at %d, want %d", res.Offsets[res.NumPartitions], rel.NumTuples)
	}
	for p := 0; p < res.NumPartitions; p++ {
		for _, tup := range res.Partition(p) {
			if got := hashutil.PartitionIndex32(uint32(tup), bits, hash); got != uint32(p) {
				t.Fatalf("tuple %#x in partition %d, belongs to %d", tup, p, got)
			}
		}
	}
	got := append([]uint64(nil), res.Data...)
	want := append([]uint64(nil), rel.Data...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output is not a permutation of input at %d", i)
		}
	}
}

func TestBufferedMatchesReference(t *testing.T) {
	for _, d := range []workload.Distribution{workload.Linear, workload.Random, workload.Grid} {
		for _, hash := range []bool{false, true} {
			for _, threads := range []int{1, 4} {
				rel := genRel(t, d, 30000, 5)
				res, err := Partition(rel, Config{NumPartitions: 256, Hash: hash, Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				checkPartitioned(t, rel, res, hash)
			}
		}
	}
}

func TestNaiveMatchesBuffered(t *testing.T) {
	rel := genRel(t, workload.Random, 20000, 9)
	buffered, err := Partition(rel, Config{NumPartitions: 128, Hash: true, Threads: 2, Algorithm: Buffered})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Partition(rel, Config{NumPartitions: 128, Hash: true, Threads: 2, Algorithm: Naive})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioned(t, rel, naive, true)
	for p := 0; p <= 128; p++ {
		if buffered.Offsets[p] != naive.Offsets[p] {
			t.Fatalf("offset mismatch at %d", p)
		}
	}
}

func TestMultiPassMatchesReference(t *testing.T) {
	rel := genRel(t, workload.Random, 50000, 11)
	// 8192 partitions exceeds the per-pass fan-out limit, forcing two passes.
	res, err := Partition(rel, Config{NumPartitions: 8192, Hash: true, Threads: 4, Algorithm: MultiPass})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioned(t, rel, res, true)
}

func TestMultiPassSmallFanOutDelegates(t *testing.T) {
	rel := genRel(t, workload.Random, 10000, 13)
	res, err := Partition(rel, Config{NumPartitions: 64, Hash: false, Threads: 2, Algorithm: MultiPass})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioned(t, rel, res, false)
}

func TestPartitionOrderIsStableWithinThreadChunks(t *testing.T) {
	// Single-threaded buffered partitioning preserves arrival order within
	// a partition (FIFO property used by some downstream operators).
	rel := genRel(t, workload.Random, 10000, 17)
	res, err := Partition(rel, Config{NumPartitions: 16, Hash: true, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	bits := hashutil.Log2(16)
	want := make([][]uint64, 16)
	for _, tup := range rel.Data {
		p := hashutil.PartitionIndex32(uint32(tup), bits, true)
		want[p] = append(want[p], tup)
	}
	for p := 0; p < 16; p++ {
		got := res.Partition(p)
		for i := range got {
			if got[i] != want[p][i] {
				t.Fatalf("partition %d not in arrival order at %d", p, i)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	rel := genRel(t, workload.Linear, 100, 1)
	if _, err := Partition(rel, Config{NumPartitions: 100}); err == nil {
		t.Error("non-power-of-two fan-out accepted")
	}
	if _, err := Partition(rel, Config{NumPartitions: 1}); err == nil {
		t.Error("fan-out 1 accepted")
	}
	wide, _ := workload.NewRelation(workload.RowLayout, 16, 4)
	if _, err := Partition(wide, Config{NumPartitions: 8}); err == nil {
		t.Error("16-byte tuples accepted")
	}
	col, _ := workload.NewRelation(workload.ColumnLayout, 8, 4)
	if _, err := Partition(col, Config{NumPartitions: 8}); err == nil {
		t.Error("column layout accepted")
	}
	if _, err := Partition(rel, Config{NumPartitions: 8, Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, n := range []int{0, 1, 7} {
		rel := genRel(t, workload.Random, n, 3)
		for _, alg := range []Algorithm{Buffered, Naive} {
			res, err := Partition(rel, Config{NumPartitions: 64, Hash: true, Threads: 4, Algorithm: alg})
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, alg, err)
			}
			checkPartitioned(t, rel, res, true)
		}
	}
}

func TestMoreThreadsThanTuples(t *testing.T) {
	rel := genRel(t, workload.Random, 5, 3)
	res, err := Partition(rel, Config{NumPartitions: 8, Hash: true, Threads: 16})
	if err != nil {
		t.Fatal(err)
	}
	checkPartitioned(t, rel, res, true)
}

func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, nRaw uint16, hash bool) bool {
		n := int(nRaw)%3000 + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint32, n)
		for i := range keys {
			keys[i] = rng.Uint32()
		}
		rel, _ := workload.FromKeys(keys, 8)
		var results []*Result
		for _, alg := range []Algorithm{Buffered, Naive, MultiPass} {
			res, err := Partition(rel, Config{NumPartitions: 32, Hash: hash, Threads: 3, Algorithm: alg})
			if err != nil {
				return false
			}
			results = append(results, res)
		}
		// All algorithms must produce identical partition boundaries and
		// identical per-partition multisets.
		for p := 0; p < 32; p++ {
			a := append([]uint64(nil), results[0].Partition(p)...)
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			for _, other := range results[1:] {
				b := append([]uint64(nil), other.Partition(p)...)
				if len(a) != len(b) {
					return false
				}
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				for i := range a {
					if a[i] != b[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestElapsedRecorded(t *testing.T) {
	rel := genRel(t, workload.Random, 50000, 23)
	res, err := Partition(rel, Config{NumPartitions: 256, Hash: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	if res.Threads != 2 {
		t.Errorf("Threads = %d", res.Threads)
	}
}

func TestAlgorithmString(t *testing.T) {
	if Buffered.String() != "buffered" || Naive.String() != "naive" || MultiPass.String() != "multipass" {
		t.Error("algorithm strings")
	}
	if Algorithm(9).String() != "Algorithm(9)" {
		t.Error("unknown algorithm string")
	}
}
