package cpupart

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"

	"fpgapart/internal/hashutil"
	"fpgapart/workload"
)

// FuzzPartIndex checks the partition-index function on arbitrary tuples and
// every legal fan-out: the index must stay in range, depend only on the key
// half of the tuple, and in radix mode be exactly the low key bits — the
// contract the FPGA's hash unit and every CPU partitioner share.
func FuzzPartIndex(f *testing.F) {
	f.Add(uint64(0), uint(1), false)
	f.Add(uint64(0xFFFFFFFFFFFFFFFF), uint(13), true)
	f.Add(uint64(0x12345678_9ABCDEF0), uint(8), true)
	f.Fuzz(func(t *testing.T, tuple uint64, bits uint, hash bool) {
		bits = 1 + bits%13 // the paper's fan-out range: 2^1..2^13
		idx := partIndex(tuple, bits, hash)
		if idx >= 1<<bits {
			t.Fatalf("partIndex(%#x, %d, %v) = %d, out of range", tuple, bits, hash, idx)
		}
		// Only the low 32 bits (the key) may matter.
		if got := partIndex(tuple&0xFFFFFFFF, bits, hash); got != idx {
			t.Fatalf("payload bits leaked into the index: %d vs %d", idx, got)
		}
		if !hash {
			if want := uint32(tuple) & (1<<bits - 1); idx != want {
				t.Fatalf("radix index of %#x with %d bits = %d, want %d", tuple, bits, idx, want)
			}
		}
	})
}

// fuzzTuples decodes a fuzz byte string into packed <key, payload> tuples.
func fuzzTuples(data []byte) []uint64 {
	tuples := make([]uint64, len(data)/8)
	for i := range tuples {
		tuples[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return tuples
}

// fuzzRelation packs tuples into a row-layout relation.
func fuzzRelation(t *testing.T, tuples []uint64) *workload.Relation {
	t.Helper()
	rel, err := workload.NewRelation(workload.RowLayout, 8, len(tuples))
	if err != nil {
		t.Fatal(err)
	}
	copy(rel.Data, tuples)
	return rel
}

// FuzzBufferedPartition is differential fuzzing of the cache-aware
// partitioners against the naive single-scatter reference (Code 1): for any
// tuple set, fan-out, hash mode, and thread count, Buffered (Code 2) and
// MultiPass must produce the identical histogram and, per partition, the
// identical tuple multiset.
func FuzzBufferedPartition(f *testing.F) {
	f.Add([]byte{}, uint8(3), true, uint8(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint8(6), true, uint8(3))
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint8(1), false, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, fanBits uint8, hash bool, threads uint8) {
		if len(data) > 1<<16 {
			t.Skip("bound the per-input work")
		}
		parts := 1 << (1 + fanBits%9) // 2..512 partitions
		cfg := Config{
			NumPartitions: parts,
			Hash:          hash,
			Threads:       1 + int(threads%4),
		}
		rel := fuzzRelation(t, fuzzTuples(data))

		cfg.Algorithm = Naive
		want, err := Partition(rel, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{Buffered, MultiPass} {
			cfg.Algorithm = alg
			got, err := Partition(rel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			comparePartitions(t, alg, want, got)
		}
	})
}

// comparePartitions requires identical offsets and per-partition multisets.
func comparePartitions(t *testing.T, alg Algorithm, want, got *Result) {
	t.Helper()
	if got.NumPartitions != want.NumPartitions || len(got.Offsets) != len(want.Offsets) {
		t.Fatalf("%v: shape %d/%d partitions, naive has %d/%d",
			alg, got.NumPartitions, len(got.Offsets), want.NumPartitions, len(want.Offsets))
	}
	if int64(len(got.Data)) != int64(len(want.Data)) {
		t.Fatalf("%v: %d tuples out, naive emits %d", alg, len(got.Data), len(want.Data))
	}
	for p := 0; p < want.NumPartitions; p++ {
		if got.Offsets[p] != want.Offsets[p] {
			t.Fatalf("%v: Offsets[%d] = %d, naive has %d", alg, p, got.Offsets[p], want.Offsets[p])
		}
		g := append([]uint64(nil), got.Partition(p)...)
		w := append([]uint64(nil), want.Partition(p)...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%v: partition %d differs from naive at tuple %d: %#x vs %#x",
					alg, p, i, g[i], w[i])
			}
		}
	}
}

// FuzzBufferedAgainstHistogram cross-checks the partitioners' histogram
// against a direct count — partition sizes are the quantity the paper's
// histogram unit (Section 4.3) must get exactly right.
func FuzzBufferedAgainstHistogram(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, fanBits uint8) {
		if len(data) > 1<<16 {
			t.Skip("bound the per-input work")
		}
		bits := uint(1 + fanBits%9)
		tuples := fuzzTuples(data)
		counts := make([]int64, 1<<bits)
		for _, tu := range tuples {
			counts[hashutil.PartitionIndex32(uint32(tu), bits, true)]++
		}
		res, err := Partition(fuzzRelation(t, tuples), Config{
			NumPartitions: 1 << bits, Hash: true, Threads: 2, Algorithm: Buffered,
		})
		if err != nil {
			t.Fatal(err)
		}
		for p := range counts {
			if res.Count(p) != counts[p] {
				t.Fatalf("partition %d holds %d tuples, direct count says %d", p, res.Count(p), counts[p])
			}
		}
	})
}
