package fpga

import (
	"fmt"

	"fpgapart/internal/simtrace"
)

// BRAM models a synchronous block RAM: a read issued in cycle t delivers its
// data in cycle t+1, and the RAM accepts one read and one write per cycle
// (simple dual-port). A write in cycle t is visible to reads issued in cycle
// t or later — i.e. a read and a write to the same address in the same cycle
// return the old data one cycle later, the behaviour the write combiner's
// forwarding logic exists to paper over (Section 4.2, Code 4).
type BRAM[T any] struct {
	data []T

	// Pending read state: at most one in flight per cycle.
	pendingValid bool
	pendingData  T

	// Statistics for resource accounting and invariant tests.
	Reads, Writes int64

	// Optional simtrace port counters (nil-receiver no-ops by default).
	readCtr, writeCtr *simtrace.Counter
}

// Instrument attaches simtrace counters to the BRAM's read and write ports.
// Either may be nil to leave that port uncounted.
func (b *BRAM[T]) Instrument(reads, writes *simtrace.Counter) {
	b.readCtr, b.writeCtr = reads, writes
}

// NewBRAM returns a BRAM with the given number of words.
func NewBRAM[T any](words int) *BRAM[T] {
	if words <= 0 {
		panic(fmt.Sprintf("fpga: BRAM of %d words", words))
	}
	return &BRAM[T]{data: make([]T, words)}
}

// Words returns the BRAM capacity in words.
func (b *BRAM[T]) Words() int { return len(b.data) }

// IssueRead latches the data at addr; it becomes available via ReadData in
// the next cycle (after the caller invokes Tick).
func (b *BRAM[T]) IssueRead(addr int) {
	b.pendingData = b.data[addr]
	b.pendingValid = true
	b.Reads++
	b.readCtr.Inc()
}

// Tick advances the RAM one clock cycle, committing the pending read into
// the read port.
func (b *BRAM[T]) Tick() {
	// The pending data was latched at issue time; Tick just marks the cycle
	// boundary. Nothing to do beyond keeping the one-read-per-cycle model
	// honest — the latch already holds the old value if a same-cycle write
	// followed the read.
}

// ReadData returns the data of the read issued in the previous cycle.
func (b *BRAM[T]) ReadData() T {
	if !b.pendingValid {
		panic("fpga: ReadData with no read in flight")
	}
	return b.pendingData
}

// Write stores v at addr, visible to reads issued in later cycles.
func (b *BRAM[T]) Write(addr int, v T) {
	b.data[addr] = v
	b.Writes++
	b.writeCtr.Inc()
}

// Peek returns the current contents of addr without modeling latency; used
// by the flush phase (which scans sequentially and can pipeline the reads)
// and by tests.
func (b *BRAM[T]) Peek(addr int) T { return b.data[addr] }

// Fill sets every word to v (power-on initialization; BRAMs on Stratix V can
// be initialized from the bitstream).
func (b *BRAM[T]) Fill(v T) {
	for i := range b.data {
		b.data[i] = v
	}
}

// Reg is a pipeline register chain of fixed depth: a value shifted in
// emerges depth cycles later. It models the stages of the hash-function
// pipeline (Code 3), where each VHDL line is a register stage.
type Reg[T any] struct {
	stages []T
	valid  []bool
}

// NewReg returns a register chain of the given depth (≥ 1).
func NewReg[T any](depth int) *Reg[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("fpga: register chain of depth %d", depth))
	}
	return &Reg[T]{stages: make([]T, depth), valid: make([]bool, depth)}
}

// Depth returns the latency of the chain in cycles.
func (r *Reg[T]) Depth() int { return len(r.stages) }

// Shift advances the chain one cycle, inserting (in, inValid) at the head
// and returning the value falling out of the tail.
func (r *Reg[T]) Shift(in T, inValid bool) (out T, outValid bool) {
	last := len(r.stages) - 1
	out, outValid = r.stages[last], r.valid[last]
	copy(r.stages[1:], r.stages[:last])
	copy(r.valid[1:], r.valid[:last])
	r.stages[0], r.valid[0] = in, inValid
	return out, outValid
}

// Drained reports whether no valid values remain in flight.
func (r *Reg[T]) Drained() bool {
	for _, v := range r.valid {
		if v {
			return false
		}
	}
	return true
}
