package fpga

import (
	"testing"
	"testing/quick"
)

func TestFIFOBasicOrder(t *testing.T) {
	f := NewFIFO[int](4)
	for i := 1; i <= 4; i++ {
		if !f.CanPush() {
			t.Fatalf("CanPush false at %d", i)
		}
		f.Push(i)
	}
	if f.CanPush() {
		t.Error("CanPush true when full")
	}
	if f.Len() != 4 || f.Free() != 0 {
		t.Errorf("Len/Free = %d/%d", f.Len(), f.Free())
	}
	for i := 1; i <= 4; i++ {
		if f.Front() != i {
			t.Fatalf("Front = %d, want %d", f.Front(), i)
		}
		if f.Pop() != i {
			t.Fatalf("Pop out of order at %d", i)
		}
	}
	if !f.Empty() {
		t.Error("not empty after draining")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f := NewFIFO[int](3)
	// Interleave pushes and pops so head wraps several times.
	next, expect := 0, 0
	for round := 0; round < 20; round++ {
		for f.CanPush() {
			f.Push(next)
			next++
		}
		f.Pop() // free one slot
		expect++
		f.Push(next)
		next++
		for !f.Empty() {
			if got := f.Pop(); got != expect {
				t.Fatalf("round %d: got %d, want %d", round, got, expect)
			}
			expect++
		}
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("push into full FIFO did not panic")
		}
	}()
	f := NewFIFO[int](1)
	f.Push(1)
	f.Push(2)
}

func TestFIFOUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("pop from empty FIFO did not panic")
		}
	}()
	NewFIFO[int](1).Pop()
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity FIFO did not panic")
		}
	}()
	NewFIFO[int](0)
}

func TestFIFOHighWater(t *testing.T) {
	f := NewFIFO[int](8)
	f.Push(1)
	f.Push(2)
	f.Push(3)
	f.Pop()
	f.Pop()
	f.Pop()
	f.Push(4)
	if f.HighWater != 3 {
		t.Errorf("HighWater = %d, want 3", f.HighWater)
	}
}

func TestFIFOPropertyQueueSemantics(t *testing.T) {
	// Against a reference slice queue, any bounded push/pop sequence agrees.
	f := func(ops []bool) bool {
		fifo := NewFIFO[int](5)
		var ref []int
		n := 0
		for _, push := range ops {
			if push && fifo.CanPush() {
				fifo.Push(n)
				ref = append(ref, n)
				n++
			} else if !push && !fifo.Empty() {
				got := fifo.Pop()
				want := ref[0]
				ref = ref[1:]
				if got != want {
					return false
				}
			}
			if fifo.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBRAMReadLatency(t *testing.T) {
	b := NewBRAM[uint64](16)
	b.Write(3, 42)
	b.IssueRead(3)
	b.Tick()
	if got := b.ReadData(); got != 42 {
		t.Errorf("ReadData = %d, want 42", got)
	}
}

func TestBRAMReadWriteSameCycleReturnsOldData(t *testing.T) {
	// The hazard the forwarding registers exist for: a read issued in the
	// same cycle as a write to the same address sees the OLD value.
	b := NewBRAM[uint64](8)
	b.Write(5, 1) // earlier cycle
	b.IssueRead(5)
	b.Write(5, 99) // same cycle as the read
	b.Tick()
	if got := b.ReadData(); got != 1 {
		t.Errorf("same-cycle read returned %d, want old value 1", got)
	}
	// The write did land for later reads.
	b.IssueRead(5)
	b.Tick()
	if got := b.ReadData(); got != 99 {
		t.Errorf("next-cycle read returned %d, want 99", got)
	}
}

func TestBRAMPeekAndFill(t *testing.T) {
	b := NewBRAM[int](4)
	b.Fill(7)
	for i := 0; i < 4; i++ {
		if b.Peek(i) != 7 {
			t.Errorf("Peek(%d) = %d after Fill(7)", i, b.Peek(i))
		}
	}
	if b.Words() != 4 {
		t.Errorf("Words = %d", b.Words())
	}
}

func TestBRAMCounters(t *testing.T) {
	b := NewBRAM[int](4)
	b.Write(0, 1)
	b.IssueRead(0)
	b.Tick()
	_ = b.ReadData()
	if b.Reads != 1 || b.Writes != 1 {
		t.Errorf("counters = %d reads, %d writes", b.Reads, b.Writes)
	}
}

func TestBRAMReadWithoutIssuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReadData without IssueRead did not panic")
		}
	}()
	NewBRAM[int](2).ReadData()
}

func TestRegLatency(t *testing.T) {
	r := NewReg[int](5) // the murmur pipeline depth
	var outputs []int
	for i := 0; i < 10; i++ {
		out, ok := r.Shift(i, true)
		if ok {
			outputs = append(outputs, out)
		}
	}
	// First output appears after 5 cycles and values emerge in order.
	if len(outputs) != 5 {
		t.Fatalf("got %d outputs, want 5", len(outputs))
	}
	for i, v := range outputs {
		if v != i {
			t.Errorf("output %d = %d", i, v)
		}
	}
}

func TestRegBubbles(t *testing.T) {
	r := NewReg[int](2)
	r.Shift(1, true)
	r.Shift(0, false) // bubble
	out, ok := r.Shift(2, true)
	if !ok || out != 1 {
		t.Errorf("first emerge = %d,%v, want 1,true", out, ok)
	}
	out, ok = r.Shift(0, false)
	if ok {
		t.Errorf("bubble emerged as valid: %d", out)
	}
	out, ok = r.Shift(0, false)
	if !ok || out != 2 {
		t.Errorf("second emerge = %d,%v, want 2,true", out, ok)
	}
	if r.Drained() == false {
		// one more shift should drain fully
		r.Shift(0, false)
	}
	for i := 0; i < 3; i++ {
		r.Shift(0, false)
	}
	if !r.Drained() {
		t.Error("register chain not drained after flushing")
	}
}

func TestRegDepthOnePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-depth register chain did not panic")
		}
	}()
	NewReg[int](0)
}

func TestBRAMZeroWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-word BRAM did not panic")
		}
	}()
	NewBRAM[int](0)
}
