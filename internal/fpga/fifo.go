// Package fpga provides the clocked-hardware building blocks the partitioner
// circuit simulator is assembled from: bounded FIFOs with back-pressure,
// block RAMs with synchronous single-cycle read latency, and pipeline
// registers. The components mirror the primitives the VHDL design uses
// (Section 4): the circuit is a composition of FIFOs between pipeline stages
// and BRAM-backed state with explicit hazard forwarding.
package fpga

import (
	"fmt"

	"fpgapart/internal/simtrace"
)

// FIFO is a bounded first-in first-out queue. A full FIFO exerts
// back-pressure: CanPush reports false and the producer stage must stall.
// The partitioner propagates such back-pressure all the way to the QPI read
// requester (Section 4.3), so no FIFO ever overflows.
type FIFO[T any] struct {
	buf        []T
	head, size int

	// HighWater records the maximum occupancy ever reached, for the
	// no-overflow invariant checks in tests.
	HighWater int

	// occ, when instrumented, observes the occupancy after every push —
	// several FIFOs may share one gauge, whose high-water mark then spans
	// them all (e.g. the lane FIFOs of the partitioner). Nil by default;
	// simtrace gauges are nil-receiver no-ops, so the uninstrumented path
	// costs one predictable branch.
	occ *simtrace.Gauge
}

// Instrument attaches a simtrace occupancy gauge to the FIFO. Passing nil
// detaches it.
func (f *FIFO[T]) Instrument(occ *simtrace.Gauge) { f.occ = occ }

// NewFIFO returns a FIFO with the given capacity.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("fpga: FIFO capacity %d", capacity))
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Cap returns the FIFO capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return f.size }

// Free returns the number of free slots.
func (f *FIFO[T]) Free() int { return len(f.buf) - f.size }

// Empty reports whether the FIFO holds no elements.
func (f *FIFO[T]) Empty() bool { return f.size == 0 }

// CanPush reports whether a push would succeed.
func (f *FIFO[T]) CanPush() bool { return f.size < len(f.buf) }

// Push enqueues v. Pushing into a full FIFO is a design bug — hardware would
// silently drop data — so the simulator panics to surface it.
//
//fpgavet:hotpath
func (f *FIFO[T]) Push(v T) {
	if !f.CanPush() {
		panic("fpga: push into full FIFO (back-pressure violated)")
	}
	f.buf[(f.head+f.size)%len(f.buf)] = v
	f.size++
	if f.size > f.HighWater {
		f.HighWater = f.size
	}
	f.occ.Observe(int64(f.size))
}

// Front returns the oldest element without removing it.
func (f *FIFO[T]) Front() T {
	if f.Empty() {
		panic("fpga: front of empty FIFO")
	}
	return f.buf[f.head]
}

// Pop removes and returns the oldest element.
//
//fpgavet:hotpath
func (f *FIFO[T]) Pop() T {
	v := f.Front()
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.size--
	return v
}
