// Package membudget models the bounded join memory of a robust hybrid hash
// join (Jahangiri et al., "Design Trade-offs for a Robust Dynamic Hybrid
// Hash Join"): a Budget tracks build/probe/partition reservations against a
// configurable byte cap, and a SpillStore accounts the simulated spill
// traffic of partitions that did not fit. Both are pure accounting — no
// clocks, no randomness — so same-seed runs make byte-identical decisions;
// the packages sit on the fpgavet deterministic path.
package membudget

import (
	"errors"
	"fmt"
)

// ErrExceeded is returned by Reserve when a reservation would push usage
// past the budget cap. Callers match it with errors.Is and respond by
// spilling, recursing, or broadcasting instead of allocating.
var ErrExceeded = errors.New("membudget: budget exceeded")

// Class labels what a reservation pays for, so exhaustion reports can say
// which phase ate the budget. Classes index a fixed array — no maps — to
// keep accounting on the deterministic path.
type Class int

const (
	// ClassBuild is hash-table state over the build side of a partition.
	ClassBuild Class = iota
	// ClassProbe is streamed probe-side state (chunk staging buffers).
	ClassProbe
	// ClassPartition is repartitioning scratch (histograms, output runs).
	ClassPartition
	// ClassSpill is the in-memory write buffer in front of the spill store.
	ClassSpill

	numClasses
)

// String names the class for error text and trace span labels.
func (c Class) String() string {
	switch c {
	case ClassBuild:
		return "build"
	case ClassProbe:
		return "probe"
	case ClassPartition:
		return "partition"
	case ClassSpill:
		return "spill"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Budget tracks byte reservations against a fixed cap. A nil Budget (or a
// cap ≤ 0) is unlimited: every method is nil-safe and admits everything, so
// call sites need no branching between budgeted and unbudgeted runs.
// Budget is not goroutine-safe; the join executor accounts partitions in a
// deterministic sequential order precisely so the high-water mark does not
// depend on thread interleaving.
type Budget struct {
	capBytes int64
	inUse    int64
	high     int64
	byClass  [numClasses]int64
	total    [numClasses]int64
}

// New returns a budget capped at capBytes; capBytes ≤ 0 means unlimited.
func New(capBytes int64) *Budget {
	if capBytes <= 0 {
		return &Budget{}
	}
	return &Budget{capBytes: capBytes}
}

// Cap returns the byte cap; 0 means unlimited.
func (b *Budget) Cap() int64 {
	if b == nil {
		return 0
	}
	return b.capBytes
}

// Limited reports whether the budget actually constrains allocations.
func (b *Budget) Limited() bool { return b != nil && b.capBytes > 0 }

// Fits reports whether n more bytes could be reserved right now.
func (b *Budget) Fits(n int64) bool {
	if !b.Limited() {
		return true
	}
	return b.inUse+n <= b.capBytes
}

// Reserve accounts n bytes of class c, failing with a wrapped ErrExceeded —
// and accounting nothing — when the reservation would overflow the cap.
func (b *Budget) Reserve(c Class, n int64) error {
	if b.Limited() && b.inUse+n > b.capBytes {
		return fmt.Errorf("membudget: reserving %d %s bytes over %d in use (cap %d): %w",
			n, c, b.inUse, b.capBytes, ErrExceeded)
	}
	b.mustReserve(c, n)
	return nil
}

// MustReserve accounts n bytes of class c even past the cap. It models the
// allocations an adaptive join cannot avoid — e.g. the single build chunk of
// a broadcast join — while keeping the high-water mark honest about them.
func (b *Budget) MustReserve(c Class, n int64) { b.mustReserve(c, n) }

func (b *Budget) mustReserve(c Class, n int64) {
	if b == nil {
		return
	}
	b.byClass[c] += n
	b.total[c] += n
	b.inUse += n
	if b.inUse > b.high {
		b.high = b.inUse
	}
}

// Release returns n bytes of class c to the budget. Releasing more than the
// class has reserved is a simulator bug, not an input condition, so it
// panics; public packages wrap the panic in ErrSimulatorFault at their API
// boundary.
func (b *Budget) Release(c Class, n int64) {
	if b == nil {
		return
	}
	if n > b.byClass[c] {
		panic(fmt.Sprintf("membudget: releasing %d %s bytes with only %d reserved", n, c, b.byClass[c]))
	}
	b.byClass[c] -= n
	b.inUse -= n
}

// InUse returns the bytes currently reserved across all classes.
func (b *Budget) InUse() int64 {
	if b == nil {
		return 0
	}
	return b.inUse
}

// HighWater returns the peak of InUse over the budget's lifetime.
func (b *Budget) HighWater() int64 {
	if b == nil {
		return 0
	}
	return b.high
}

// Total returns the cumulative bytes ever reserved for class c (releases do
// not subtract) — the traffic of a phase, not its footprint.
func (b *Budget) Total(c Class) int64 {
	if b == nil {
		return 0
	}
	return b.total[c]
}

// SpillStore accounts the simulated spill device: partitions that exceed
// the budget are written out as segments and read back by later passes.
// Like Budget it is pure bookkeeping and nil-safe.
type SpillStore struct {
	written  int64
	read     int64
	segments int64
}

// Write accounts one spilled segment of n bytes.
func (s *SpillStore) Write(n int64) {
	if s == nil {
		return
	}
	s.written += n
	s.segments++
}

// Read accounts n bytes read back from the store.
func (s *SpillStore) Read(n int64) {
	if s == nil {
		return
	}
	s.read += n
}

// BytesWritten returns the cumulative bytes spilled out.
func (s *SpillStore) BytesWritten() int64 {
	if s == nil {
		return 0
	}
	return s.written
}

// BytesRead returns the cumulative bytes read back.
func (s *SpillStore) BytesRead() int64 {
	if s == nil {
		return 0
	}
	return s.read
}

// Segments returns the number of spilled segments written.
func (s *SpillStore) Segments() int64 {
	if s == nil {
		return 0
	}
	return s.segments
}
