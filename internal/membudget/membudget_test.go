package membudget

import (
	"errors"
	"strings"
	"testing"
)

func TestUnlimitedBudget(t *testing.T) {
	for _, b := range []*Budget{nil, New(0), New(-5)} {
		if b.Limited() {
			t.Fatalf("budget %v should be unlimited", b)
		}
		if !b.Fits(1 << 40) {
			t.Fatalf("unlimited budget rejected a reservation")
		}
		if err := b.Reserve(ClassBuild, 1<<40); err != nil {
			t.Fatalf("unlimited Reserve: %v", err)
		}
	}
	// The nil budget accounts nothing; a zero-cap budget still accounts.
	var nilB *Budget
	if nilB.InUse() != 0 || nilB.HighWater() != 0 || nilB.Total(ClassBuild) != 0 {
		t.Fatalf("nil budget should report zero usage")
	}
	b := New(0)
	if err := b.Reserve(ClassProbe, 100); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if b.InUse() != 100 || b.Total(ClassProbe) != 100 {
		t.Fatalf("zero-cap budget should still account: inUse %d total %d", b.InUse(), b.Total(ClassProbe))
	}
}

func TestReserveRelease(t *testing.T) {
	b := New(1000)
	if got := b.Cap(); got != 1000 {
		t.Fatalf("Cap = %d, want 1000", got)
	}
	if err := b.Reserve(ClassBuild, 600); err != nil {
		t.Fatalf("Reserve 600: %v", err)
	}
	if err := b.Reserve(ClassProbe, 400); err != nil {
		t.Fatalf("Reserve 400: %v", err)
	}
	if !errors.Is(b.Reserve(ClassPartition, 1), ErrExceeded) {
		t.Fatalf("Reserve over cap should wrap ErrExceeded")
	}
	// A failed reservation accounts nothing.
	if b.InUse() != 1000 || b.Total(ClassPartition) != 0 {
		t.Fatalf("failed Reserve leaked accounting: inUse %d", b.InUse())
	}
	b.Release(ClassProbe, 400)
	if b.InUse() != 600 {
		t.Fatalf("InUse after release = %d, want 600", b.InUse())
	}
	if b.HighWater() != 1000 {
		t.Fatalf("HighWater = %d, want 1000", b.HighWater())
	}
	// Totals are cumulative traffic, not footprint.
	if b.Total(ClassProbe) != 400 {
		t.Fatalf("Total(probe) = %d, want 400", b.Total(ClassProbe))
	}
}

func TestMustReserveOvershoots(t *testing.T) {
	b := New(100)
	b.MustReserve(ClassBuild, 300)
	if b.InUse() != 300 || b.HighWater() != 300 {
		t.Fatalf("MustReserve should account past the cap: inUse %d high %d", b.InUse(), b.HighWater())
	}
	if b.Fits(1) {
		t.Fatalf("budget over cap should not fit more")
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("over-release should panic")
		}
		if !strings.Contains(r.(string), "membudget") {
			t.Fatalf("panic %v should identify the package", r)
		}
	}()
	b := New(100)
	if err := b.Reserve(ClassBuild, 50); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	b.Release(ClassBuild, 51)
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassBuild: "build", ClassProbe: "probe",
		ClassPartition: "partition", ClassSpill: "spill",
		Class(99): "class(99)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestSpillStore(t *testing.T) {
	var nilS *SpillStore
	nilS.Write(10)
	nilS.Read(10)
	if nilS.BytesWritten() != 0 || nilS.BytesRead() != 0 || nilS.Segments() != 0 {
		t.Fatalf("nil spill store should be a no-op")
	}
	s := &SpillStore{}
	s.Write(64)
	s.Write(128)
	s.Read(64)
	if s.BytesWritten() != 192 || s.Segments() != 2 || s.BytesRead() != 64 {
		t.Fatalf("spill accounting wrong: wrote %d in %d segments, read %d",
			s.BytesWritten(), s.Segments(), s.BytesRead())
	}
}
