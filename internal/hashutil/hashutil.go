// Package hashutil provides the hash functions used by the partitioners.
//
// The paper (Section 3.2, following Richter et al.) distinguishes cheap but
// fragile radix-bit "hashing" from robust hash functions such as murmur
// hashing. The FPGA circuit implements the 32-bit murmur3 finalizer as a
// five-stage pipeline (Code 3); this package provides the identical function
// in software so that the CPU baseline, the FPGA simulator, and the tests all
// agree bit-for-bit on partition assignment.
package hashutil

// Murmur32Finalizer is the 32-bit murmur3 finalizer (fmix32), the exact
// computation synthesized in the FPGA hash function module (Code 3 of the
// paper) for 4-byte keys. It has full avalanche behaviour: every input bit
// affects every output bit with probability close to 1/2.
func Murmur32Finalizer(key uint32) uint32 {
	key ^= key >> 16
	key *= 0x85ebca6b
	key ^= key >> 13
	key *= 0xc2b2ae35
	key ^= key >> 16
	return key
}

// Murmur64Finalizer is the 64-bit murmur3 finalizer (fmix64), used for
// 8-byte keys in the wider-tuple configurations of the circuit (Section 4.4:
// hashing 8 B keys needs more multiplier DSP blocks but the same latency
// structure).
func Murmur64Finalizer(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// RadixBits extracts the n least significant bits of the key — the
// "partitioning attribute" of radix partitioning. It is the do_hash == 0
// branch of Code 3.
func RadixBits(key uint32, n uint) uint32 {
	if n >= 32 {
		return key
	}
	return key & ((1 << n) - 1)
}

// RadixBits64 is RadixBits for 8-byte keys.
func RadixBits64(key uint64, n uint) uint64 {
	if n >= 64 {
		return key
	}
	return key & ((1 << n) - 1)
}

// Fibonacci32 is multiplicative (Fibonacci) hashing: key * 2^32/phi. It is a
// cheap middle ground between radix bits and murmur, included for the hashing
// robustness comparison of Section 3.2.
func Fibonacci32(key uint32) uint32 {
	return key * 0x9e3779b9
}

// Murmur3_32 is the full murmur3 32-bit hash over an arbitrary byte slice
// with the given seed. The partitioners only hash fixed-width integer keys,
// but the full algorithm is provided for variable-length keys (e.g. string
// partitioning keys mentioned in the grid-distribution motivation).
func Murmur3_32(data []byte, seed uint32) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(data)
	// Body: 4-byte blocks.
	for len(data) >= 4 {
		k := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		data = data[4:]
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
		h = h<<13 | h>>19
		h = h*5 + 0xe6546b64
	}
	// Tail.
	var k uint32
	switch len(data) {
	case 3:
		k ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(data[0])
		k *= c1
		k = k<<15 | k>>17
		k *= c2
		h ^= k
	}
	h ^= uint32(n)
	return Murmur32Finalizer(h)
}

// PartitionIndex32 maps a 4-byte key to a partition in [0, numPartitions)
// using the given attribute function. numPartitions must be a power of two;
// the partition is the low bits of the hashed (or raw) key, exactly as the
// circuit takes "N LSBs" in Code 3.
func PartitionIndex32(key uint32, radixBits uint, hash bool) uint32 {
	if hash {
		return RadixBits(Murmur32Finalizer(key), radixBits)
	}
	return RadixBits(key, radixBits)
}

// PartitionIndex64 is PartitionIndex32 for 8-byte keys.
func PartitionIndex64(key uint64, radixBits uint, hash bool) uint64 {
	if hash {
		return RadixBits64(Murmur64Finalizer(key), radixBits)
	}
	return RadixBits64(key, radixBits)
}

// Log2 returns floor(log2(n)) for n ≥ 1. It is the radix-bit count for a
// power-of-two partition fan-out.
func Log2(n int) uint {
	var b uint
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// IsPowerOfTwo reports whether n is a positive power of two. Partition
// fan-outs must be powers of two so that "take N LSBs" addresses exactly the
// partition range.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}
