package hashutil

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMurmur32FinalizerKnownValues(t *testing.T) {
	// fmix32 maps 0 to 0 (all steps are xor/multiply) and is deterministic.
	if got := Murmur32Finalizer(0); got != 0 {
		t.Errorf("Murmur32Finalizer(0) = %#x, want 0", got)
	}
	// Determinism.
	for i := 0; i < 100; i++ {
		k := rand.Uint32()
		if Murmur32Finalizer(k) != Murmur32Finalizer(k) {
			t.Fatalf("finalizer not deterministic for %#x", k)
		}
	}
}

func TestMurmur32FinalizerBijective(t *testing.T) {
	// fmix32 is a bijection on uint32 (xorshift and odd-multiply steps are
	// each invertible). Check injectivity on a dense sample.
	seen := make(map[uint32]uint32, 1<<16)
	for i := uint32(0); i < 1<<16; i++ {
		h := Murmur32Finalizer(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: %d and %d both hash to %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMurmur64FinalizerBijectiveSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<15)
	for i := uint64(0); i < 1<<15; i++ {
		h := Murmur64Finalizer(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: %d and %d both hash to %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestAvalanche32(t *testing.T) {
	// Flipping one input bit should flip close to half the output bits on
	// average (avalanche property that makes murmur "robust" per Richter et
	// al.). We allow a generous band since this is a statistical property.
	const trials = 2000
	rng := rand.New(rand.NewSource(1))
	var total, count float64
	for i := 0; i < trials; i++ {
		k := rng.Uint32()
		bit := uint(rng.Intn(32))
		d := Murmur32Finalizer(k) ^ Murmur32Finalizer(k^(1<<bit))
		total += float64(bits.OnesCount32(d))
		count++
	}
	avg := total / count
	if avg < 12 || avg > 20 {
		t.Errorf("avalanche average = %.2f flipped bits, want ~16 (12..20)", avg)
	}
}

func TestRadixBits(t *testing.T) {
	cases := []struct {
		key  uint32
		n    uint
		want uint32
	}{
		{0xffffffff, 0, 0},
		{0xffffffff, 1, 1},
		{0xffffffff, 13, 0x1fff},
		{0x12345678, 8, 0x78},
		{0x12345678, 32, 0x12345678},
		{0x12345678, 40, 0x12345678},
	}
	for _, c := range cases {
		if got := RadixBits(c.key, c.n); got != c.want {
			t.Errorf("RadixBits(%#x, %d) = %#x, want %#x", c.key, c.n, got, c.want)
		}
	}
}

func TestRadixBits64(t *testing.T) {
	if got := RadixBits64(0xffffffffffffffff, 13); got != 0x1fff {
		t.Errorf("RadixBits64 = %#x, want 0x1fff", got)
	}
	if got := RadixBits64(0xabcdef, 64); got != 0xabcdef {
		t.Errorf("RadixBits64 full width = %#x", got)
	}
}

func TestPartitionIndexInRange(t *testing.T) {
	f := func(key uint32) bool {
		const bits = 13 // 8192 partitions, the paper's default fan-out
		r := PartitionIndex32(key, bits, false)
		h := PartitionIndex32(key, bits, true)
		return r < 8192 && h < 8192
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionIndex64InRange(t *testing.T) {
	f := func(key uint64) bool {
		r := PartitionIndex64(key, 13, false)
		h := PartitionIndex64(key, 13, true)
		return r < 8192 && h < 8192
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionIndexRadixMatchesLSBs(t *testing.T) {
	f := func(key uint32) bool {
		return PartitionIndex32(key, 13, false) == key&0x1fff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMurmur3_32KnownVectors(t *testing.T) {
	// Canonical murmur3 x86_32 test vectors.
	cases := []struct {
		data []byte
		seed uint32
		want uint32
	}{
		{nil, 0, 0},
		{nil, 1, 0x514e28b7},
		{[]byte{}, 0xffffffff, 0x81f16f39},
		{[]byte("test"), 0, 0xba6bd213},
		{[]byte("Hello, world!"), 0, 0xc0363e43},
		{[]byte("The quick brown fox jumps over the lazy dog"), 0, 0x2e4ff723},
	}
	for _, c := range cases {
		if got := Murmur3_32(c.data, c.seed); got != c.want {
			t.Errorf("Murmur3_32(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestMurmur3_32TailLengths(t *testing.T) {
	// Exercise all tail cases (len mod 4 = 0..3); results must be stable and
	// differ across lengths.
	data := []byte{1, 2, 3, 4, 5, 6, 7}
	seen := make(map[uint32]int)
	for n := 0; n <= len(data); n++ {
		h := Murmur3_32(data[:n], 42)
		if prev, ok := seen[h]; ok {
			t.Errorf("prefix lengths %d and %d collide: %#x", prev, n, h)
		}
		seen[h] = n
	}
}

func TestFibonacci32Spread(t *testing.T) {
	// Sequential keys must spread across high bits (the weakness of raw radix
	// bits that multiplicative hashing fixes).
	seen := make(map[uint32]bool)
	for i := uint32(0); i < 1024; i++ {
		seen[Fibonacci32(i)>>22] = true
	}
	if len(seen) < 512 {
		t.Errorf("Fibonacci32 spread over top-10-bit buckets = %d, want ≥ 512", len(seen))
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		n    int
		want uint
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {8192, 13}, {1 << 20, 20}}
	for _, c := range cases {
		if got := Log2(c.n); got != c.want {
			t.Errorf("Log2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8192, 1 << 30} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false, want true", n)
		}
	}
	for _, n := range []int{0, -1, -8, 3, 6, 8191} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true, want false", n)
		}
	}
}

func BenchmarkMurmur32Finalizer(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += Murmur32Finalizer(uint32(i))
	}
	_ = sink
}

func BenchmarkMurmur64Finalizer(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Murmur64Finalizer(uint64(i))
	}
	_ = sink
}

func BenchmarkRadixBits(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += RadixBits(uint32(i), 13)
	}
	_ = sink
}
