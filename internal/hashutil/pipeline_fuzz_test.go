// Fuzz parity between the software murmur finalizer and the cycle-stepped
// five-stage hardware pipeline model. An external test package lets us
// import internal/core (which itself imports hashutil) without a cycle.
//
// Runs as an ordinary test over the seed corpus under `go test`; run
// `go test -fuzz=FuzzHashPipelineParity ./internal/hashutil` to explore.
package hashutil_test

import (
	"testing"

	"fpgapart/internal/core"
	"fpgapart/internal/hashutil"
)

func FuzzHashPipelineParity(f *testing.F) {
	seeds := []uint32{
		0, 1, 2, 0xffffffff, 0x80000000, 0x7fffffff,
		0xdeadbeef, 0x85ebca6b, 0xc2b2ae35, 1 << 16, 1<<16 - 1,
	}
	for _, s := range seeds {
		f.Add(s, s*2654435761)
	}
	f.Fuzz(func(t *testing.T, a, b uint32) {
		keys := []uint32{a, b, a ^ b, a + b}
		p := core.NewHashPipeline()
		hashes := p.HashAll(keys)
		if len(hashes) != len(keys) {
			t.Fatalf("pipeline returned %d hashes for %d keys", len(hashes), len(keys))
		}
		for i, k := range keys {
			if want := hashutil.Murmur32Finalizer(k); hashes[i] != want {
				t.Errorf("key %#x: pipeline = %#x, software = %#x", k, hashes[i], want)
			}
		}
	})
}
