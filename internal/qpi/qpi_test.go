package qpi

import (
	"math"
	"testing"

	"fpgapart/platform"
)

func flatCurve(gbps float64) platform.BandwidthCurve {
	return platform.BandwidthCurve{Points: []float64{gbps, gbps}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, flatCurve(6.4)); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := New(-1, flatCurve(6.4)); err == nil {
		t.Error("negative clock accepted")
	}
}

func TestBalancedMixSustainsCurveBandwidth(t *testing.T) {
	// 6.4 GB/s at 200 MHz = 32 bytes per cycle = one 64 B line every 2
	// cycles, split evenly between reads and writes.
	e, err := New(200e6, flatCurve(6.4))
	if err != nil {
		t.Fatal(err)
	}
	e.SetMix(0.5)
	for i := 0; i < 100000; i++ {
		e.Tick()
		if e.CanRead() {
			e.Read()
		}
		if e.CanWrite() {
			e.Write()
		}
	}
	got := e.AchievedGBps()
	if math.Abs(got-6.4) > 0.1 {
		t.Errorf("achieved %v GB/s, want ~6.4", got)
	}
	// Balanced mix must transfer balanced lines.
	ratio := float64(e.LinesRead) / float64(e.LinesWritten)
	if math.Abs(ratio-1) > 0.01 {
		t.Errorf("read/write line ratio %v, want 1", ratio)
	}
}

func TestReadOnlyMixStarvesWrites(t *testing.T) {
	e, _ := New(200e6, flatCurve(7.1))
	e.SetMix(1)
	for i := 0; i < 10000; i++ {
		e.Tick()
		if e.CanWrite() {
			t.Fatal("write budget accrued in read-only mix")
		}
		if e.CanRead() {
			e.Read()
		}
	}
	if e.LinesRead == 0 {
		t.Error("no reads completed")
	}
}

func TestVRIDMixSplitsOneToTwo(t *testing.T) {
	// Read fraction 1/3: one read line per two write lines.
	e, _ := New(200e6, flatCurve(6.0))
	e.SetMix(1.0 / 3.0)
	for i := 0; i < 300000; i++ {
		e.Tick()
		if e.CanRead() {
			e.Read()
		}
		if e.CanWrite() {
			e.Write()
		}
	}
	ratio := float64(e.LinesWritten) / float64(e.LinesRead)
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("write/read ratio %v, want 2", ratio)
	}
}

func TestMixClamping(t *testing.T) {
	e, _ := New(200e6, flatCurve(6))
	e.SetMix(-1)
	if e.Mix() != 0 {
		t.Errorf("Mix = %v after SetMix(-1)", e.Mix())
	}
	e.SetMix(2)
	if e.Mix() != 1 {
		t.Errorf("Mix = %v after SetMix(2)", e.Mix())
	}
}

func TestBurstCap(t *testing.T) {
	e, _ := New(200e6, flatCurve(12.8)) // 64 B per cycle at balanced mix
	e.SetMix(0.5)
	// Idle for a long time, then check we cannot burst more than burstLines.
	for i := 0; i < 1000; i++ {
		e.Tick()
	}
	reads := 0
	for e.CanRead() {
		e.Read()
		reads++
	}
	if reads > burstLines {
		t.Errorf("burst of %d reads after idling, want ≤ %d", reads, burstLines)
	}
}

func TestReadWithoutBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Read without budget did not panic")
		}
	}()
	e, _ := New(200e6, flatCurve(6))
	e.Read()
}

func TestWriteWithoutBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Write without budget did not panic")
		}
	}()
	e, _ := New(200e6, flatCurve(6))
	e.Write()
}

func TestCurveMixDependence(t *testing.T) {
	// With the real platform curve, a write-heavy mix must sustain less
	// bandwidth than a read-heavy one.
	p := platform.XeonFPGA()
	run := func(mix float64) float64 {
		e, _ := New(200e6, p.FPGAAlone)
		e.SetMix(mix)
		for i := 0; i < 200000; i++ {
			e.Tick()
			if e.CanRead() {
				e.Read()
			}
			if e.CanWrite() {
				e.Write()
			}
		}
		return e.AchievedGBps()
	}
	if writeHeavy, readHeavy := run(0.2), run(0.8); writeHeavy >= readHeavy {
		t.Errorf("write-heavy %v GB/s ≥ read-heavy %v GB/s", writeHeavy, readHeavy)
	}
}

func TestAchievedZeroBeforeTicks(t *testing.T) {
	e, _ := New(200e6, flatCurve(6))
	if e.AchievedGBps() != 0 {
		t.Error("achieved bandwidth nonzero before any cycle")
	}
}
