// Package qpi models the QPI end-point through which the FPGA accelerator
// reaches main memory (Section 2.1): all traffic moves in 64-byte cache
// lines, and the combined read+write bandwidth depends on the traffic mix as
// measured in Figure 2. The end-point is the component that throttles the
// partitioner — the circuit can produce a cache line per cycle (12.8 GB/s at
// 200 MHz), but QPI sustains only ~6.5 GB/s, so it exerts back-pressure on
// the write-back module (Section 4.3).
//
// The model is a per-cycle token bucket: every clock cycle the end-point
// accrues B(mix)/f bytes of budget, split between the read and write
// channels in proportion to the mix; a cache line may cross the link when
// its channel holds 64 bytes of budget.
package qpi

import (
	"fmt"

	"fpgapart/internal/simtrace"
	"fpgapart/platform"
)

// LineBytes is the QPI transfer granularity.
const LineBytes = 64

// burstLines caps how much unused budget a channel can bank, bounding the
// burstiness of the model (a real link cannot save up idle cycles).
const burstLines = 4

// Endpoint is a cycle-stepped QPI end-point.
type Endpoint struct {
	clockHz float64
	curve   platform.BandwidthCurve

	readFrac    float64
	readPerCyc  float64 // bytes of read budget accrued per cycle
	writePerCyc float64
	readTokens  float64
	writeTokens float64

	// LinesRead and LinesWritten count completed transfers.
	LinesRead    int64
	LinesWritten int64
	// Cycles counts Tick calls, so tests can derive achieved bandwidth.
	Cycles int64

	// Optional simtrace transfer counters (nil-receiver no-ops by
	// default): one increment per completed cache-line read/write.
	readCtr, writeCtr *simtrace.Counter
}

// Instrument attaches simtrace counters to the end-point's read and write
// channels. Either may be nil to leave that channel uncounted.
func (e *Endpoint) Instrument(reads, writes *simtrace.Counter) {
	e.readCtr, e.writeCtr = reads, writes
}

// New returns an end-point clocked at clockHz whose achievable bandwidth
// follows curve. The initial traffic mix is balanced.
func New(clockHz float64, curve platform.BandwidthCurve) (*Endpoint, error) {
	if clockHz <= 0 {
		return nil, fmt.Errorf("qpi: clock %v Hz", clockHz)
	}
	e := &Endpoint{clockHz: clockHz, curve: curve}
	e.SetMix(0.5)
	return e, nil
}

// SetMix declares the read fraction of the upcoming traffic phase
// (1 = read-only, 0.5 = one read per write in bytes, 1/3 = VRID mode's one
// read per two writes). The bandwidth curve is evaluated at this mix and the
// budget split accordingly. Unspent budget is discarded, as a phase change
// corresponds to a new run configuration.
func (e *Endpoint) SetMix(readFrac float64) {
	if !(readFrac >= 0) { // negative or NaN
		readFrac = 0
	} else if readFrac > 1 {
		readFrac = 1
	}
	e.readFrac = readFrac
	bytesPerSec := e.curve.BytesPerSecond(readFrac)
	perCycle := bytesPerSec / e.clockHz
	e.readPerCyc = perCycle * readFrac
	e.writePerCyc = perCycle * (1 - readFrac)
	e.readTokens = 0
	e.writeTokens = 0
}

// Mix returns the current read fraction.
func (e *Endpoint) Mix() float64 { return e.readFrac }

// Tick advances one clock cycle, accruing channel budget.
func (e *Endpoint) Tick() {
	e.Cycles++
	e.readTokens += e.readPerCyc
	if max := float64(burstLines * LineBytes); e.readTokens > max {
		e.readTokens = max
	}
	e.writeTokens += e.writePerCyc
	if max := float64(burstLines * LineBytes); e.writeTokens > max {
		e.writeTokens = max
	}
}

// CanRead reports whether a cache-line read may be issued this cycle.
func (e *Endpoint) CanRead() bool { return e.readTokens >= LineBytes }

// Read consumes budget for one cache-line read.
func (e *Endpoint) Read() {
	if !e.CanRead() {
		panic("qpi: read without budget")
	}
	e.readTokens -= LineBytes
	e.LinesRead++
	e.readCtr.Inc()
}

// CanWrite reports whether a cache-line write may be issued this cycle.
func (e *Endpoint) CanWrite() bool { return e.writeTokens >= LineBytes }

// Write consumes budget for one cache-line write.
func (e *Endpoint) Write() {
	if !e.CanWrite() {
		panic("qpi: write without budget")
	}
	e.writeTokens -= LineBytes
	e.LinesWritten++
	e.writeCtr.Inc()
}

// AchievedGBps returns the realized combined bandwidth so far, for
// cross-checking the model against the curve in tests.
func (e *Endpoint) AchievedGBps() float64 {
	if e.Cycles == 0 {
		return 0
	}
	seconds := float64(e.Cycles) / e.clockHz
	return float64(e.LinesRead+e.LinesWritten) * LineBytes / seconds / 1e9
}
