package simtrace

import "testing"

func TestSnapshotDiff(t *testing.T) {
	old := NewRegistry()
	old.Counter("cycles").Add(100)
	old.Counter("stalls").Add(7)
	old.Gauge("occ").Observe(4)
	hr := old.Histogram("sizes")
	hr.Observe(3)

	nw := NewRegistry()
	nw.Counter("cycles").Add(101) // changed
	// "stalls" removed
	nw.Gauge("occ").Observe(4) // unchanged
	hn := nw.Histogram("sizes")
	hn.Observe(4) // same count, different bucket → changed
	nw.Counter("zz.new").Add(1)

	deltas := old.Snapshot().Diff(nw.Snapshot())
	got := map[string]Change{}
	for _, d := range deltas {
		got[d.Name] = d.Change
	}
	want := map[string]Change{
		"cycles": Changed,
		"stalls": Removed,
		"occ":    Unchanged,
		"sizes":  Changed,
		"zz.new": Added,
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d: %+v", len(deltas), len(want), deltas)
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: change %q, want %q", name, got[name], w)
		}
	}

	// Deltas must come out in sorted name order.
	for i := 1; i < len(deltas); i++ {
		if deltas[i-1].Name >= deltas[i].Name {
			t.Fatalf("deltas unsorted: %q before %q", deltas[i-1].Name, deltas[i].Name)
		}
	}

	// Gauge high-water-only change must register as Changed.
	a := NewRegistry()
	a.Gauge("g").Observe(5)
	b := NewRegistry()
	g := b.Gauge("g")
	g.Observe(9)
	g.Observe(5) // same last value, higher max
	d := a.Snapshot().Diff(b.Snapshot())
	if len(d) != 1 || d[0].Change != Changed {
		t.Fatalf("max-only divergence not detected: %+v", d)
	}
}

func TestSnapshotWith(t *testing.T) {
	r := NewRegistry()
	r.Counter("m.b").Add(2)
	snap := r.Snapshot().With(
		Metric{Name: "m.a", Kind: KindCounter, Value: 1},
		Metric{Name: "m.c", Kind: KindCounter, Value: 3},
	)
	if len(snap) != 3 || snap[0].Name != "m.a" || snap[1].Name != "m.b" || snap[2].Name != "m.c" {
		t.Fatalf("With did not merge sorted: %+v", snap)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name in With must panic")
		}
	}()
	snap.With(Metric{Name: "m.b"})
}
