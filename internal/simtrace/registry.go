package simtrace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metric kinds, as they appear in snapshots and JSON.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is a monotonically growing 64-bit metric (cycles, lines, stalls).
// All methods are nil-receiver no-ops so uninstrumented components can call
// through a nil pointer at zero cost.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a point-in-time metric that also records its high-water mark
// (FIFO occupancy, fill levels). Nil-receiver methods are no-ops.
type Gauge struct {
	name string
	last int64
	max  int64
	seen bool
}

// Observe records v as the gauge's current value, updating the high-water
// mark.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	g.last = v
	if !g.seen || v > g.max {
		g.max = v
		g.seen = true
	}
}

// Value returns the most recent observation (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.last
}

// Max returns the high-water mark (0 for nil or never observed).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Name returns the registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry is a named set of counters and gauges. Creation order is
// remembered so snapshots never iterate a map (the fpgavet determinism
// contract); snapshots are additionally sorted by name so the creation
// order does not leak into golden files.
type Registry struct {
	order      []string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// clash panics if name is already registered under a different kind.
func (r *Registry) clash(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != KindCounter {
		panic(fmt.Sprintf("simtrace: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != KindGauge {
		panic(fmt.Sprintf("simtrace: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != KindHistogram {
		panic(fmt.Sprintf("simtrace: %q already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil counter (whose methods are no-ops).
// Registering a name as both counter and gauge is a caller bug and panics.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.clash(name, KindCounter)
	c := &Counter{name: name}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// A nil registry returns a nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.clash(name, KindGauge)
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. A nil registry returns a nil histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.clash(name, KindHistogram)
	h := &Histogram{name: name}
	r.histograms[name] = h
	r.order = append(r.order, name)
	return h
}

// HistogramBucket is one non-empty bucket of a snapshotted histogram:
// Count observations fell into bucket Exp (see BucketOf — Exp 0 holds
// non-positive values, Exp i ≥ 1 holds [2^(i-1), 2^i)).
type HistogramBucket struct {
	Exp   int   `json:"exp"`
	Count int64 `json:"count"`
}

// Metric is one snapshotted metric value. The json tags name the fields the
// deterministic writer emits — parsing a written snapshot back (the perf
// gate's read path) round-trips through them; the gated write path never
// uses encoding/json.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`          // KindCounter, KindGauge or KindHistogram
	Value int64  `json:"value"`         // counter total, gauge's last observation, or histogram observation count
	Max   int64  `json:"max,omitempty"` // gauge high-water mark / histogram max observation (0 for counters)
	// Buckets holds a histogram's non-empty buckets in ascending exponent
	// order (nil for counters and gauges).
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name.
type Snapshot []Metric

// Snapshot captures every metric, sorted by name. Safe on nil (empty).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	snap := make(Snapshot, 0, len(names))
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			snap = append(snap, Metric{Name: name, Kind: KindCounter, Value: c.v})
			continue
		}
		if h, ok := r.histograms[name]; ok {
			snap = append(snap, Metric{Name: name, Kind: KindHistogram, Value: h.count, Max: h.max, Buckets: h.sparse()})
			continue
		}
		g := r.gauges[name]
		snap = append(snap, Metric{Name: name, Kind: KindGauge, Value: g.last, Max: g.max})
	}
	return snap
}

// With returns a copy of the snapshot extended with extra metrics, re-sorted
// by name. The perf-gate runner uses it to append derived scalars (e.g.
// cycles per kilotuple) to a session's snapshot before writing a BENCH
// record. Duplicate names are a caller bug and panic.
func (s Snapshot) With(extra ...Metric) Snapshot {
	out := make(Snapshot, 0, len(s)+len(extra))
	out = append(out, s...)
	out = append(out, extra...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i := 1; i < len(out); i++ {
		if out[i].Name == out[i-1].Name {
			panic(fmt.Sprintf("simtrace: duplicate metric %q in Snapshot.With", out[i].Name))
		}
	}
	return out
}

// Get returns the metric registered under name.
func (s Snapshot) Get(name string) (Metric, bool) {
	// The snapshot is sorted by name; binary search keeps Get cheap for
	// assertion-heavy tests.
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Metric{}, false
}

// WriteJSON writes the snapshot as deterministic, diff-friendly JSON: one
// metric object per line, fields in fixed order, sorted by name. Byte
// identical across same-seed runs.
func (s Snapshot) WriteJSON(w io.Writer) error {
	if err := s.WriteJSONIndent(w, ""); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return fmt.Errorf("simtrace: writing metrics snapshot: %w", err)
	}
	return nil
}

// WriteJSONIndent writes the same deterministic JSON object as WriteJSON,
// with every line after the first prefixed by indent and no trailing
// newline, so the snapshot can be embedded field-by-field inside a larger
// hand-written document (the BENCH record writer). WriteJSONIndent(w, "")
// followed by a newline is byte-identical to WriteJSON.
func (s Snapshot) WriteJSONIndent(w io.Writer, indent string) error {
	write := func(line string) error {
		if _, err := io.WriteString(w, line); err != nil {
			return fmt.Errorf("simtrace: writing metrics snapshot: %w", err)
		}
		return nil
	}
	if err := write("{\n" + indent + "  \"metrics\": [\n"); err != nil {
		return err
	}
	for i, m := range s {
		sep := ","
		if i == len(s)-1 {
			sep = ""
		}
		var line string
		switch m.Kind {
		case KindGauge:
			line = fmt.Sprintf("%s    {\"name\": %q, \"kind\": %q, \"value\": %d, \"max\": %d}%s\n",
				indent, m.Name, m.Kind, m.Value, m.Max, sep)
		case KindHistogram:
			var b strings.Builder
			fmt.Fprintf(&b, "%s    {\"name\": %q, \"kind\": %q, \"value\": %d, \"max\": %d, \"buckets\": [",
				indent, m.Name, m.Kind, m.Value, m.Max)
			for j, bk := range m.Buckets {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "{\"exp\": %d, \"count\": %d}", bk.Exp, bk.Count)
			}
			fmt.Fprintf(&b, "]}%s\n", sep)
			line = b.String()
		default:
			line = fmt.Sprintf("%s    {\"name\": %q, \"kind\": %q, \"value\": %d}%s\n",
				indent, m.Name, m.Kind, m.Value, sep)
		}
		if err := write(line); err != nil {
			return err
		}
	}
	return write(indent + "  ]\n" + indent + "}")
}
