package simtrace

import (
	"fmt"
	"io"
	"sort"
)

// Metric kinds, as they appear in snapshots and JSON.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
)

// Counter is a monotonically growing 64-bit metric (cycles, lines, stalls).
// All methods are nil-receiver no-ops so uninstrumented components can call
// through a nil pointer at zero cost.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a point-in-time metric that also records its high-water mark
// (FIFO occupancy, fill levels). Nil-receiver methods are no-ops.
type Gauge struct {
	name string
	last int64
	max  int64
	seen bool
}

// Observe records v as the gauge's current value, updating the high-water
// mark.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	g.last = v
	if !g.seen || v > g.max {
		g.max = v
		g.seen = true
	}
}

// Value returns the most recent observation (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.last
}

// Max returns the high-water mark (0 for nil or never observed).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Name returns the registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry is a named set of counters and gauges. Creation order is
// remembered so snapshots never iterate a map (the fpgavet determinism
// contract); snapshots are additionally sorted by name so the creation
// order does not leak into golden files.
type Registry struct {
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a nil counter (whose methods are no-ops).
// Registering a name as both counter and gauge is a caller bug and panics.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, clash := r.gauges[name]; clash {
		panic(fmt.Sprintf("simtrace: %q already registered as a gauge", name))
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// A nil registry returns a nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if _, clash := r.counters[name]; clash {
		panic(fmt.Sprintf("simtrace: %q already registered as a counter", name))
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Metric is one snapshotted metric value.
type Metric struct {
	Name  string
	Kind  string // KindCounter or KindGauge
	Value int64  // counter total, or gauge's last observation
	Max   int64  // gauge high-water mark (0 for counters)
}

// Snapshot is a point-in-time copy of a registry, sorted by name.
type Snapshot []Metric

// Snapshot captures every metric, sorted by name. Safe on nil (empty).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	snap := make(Snapshot, 0, len(names))
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			snap = append(snap, Metric{Name: name, Kind: KindCounter, Value: c.v})
			continue
		}
		g := r.gauges[name]
		snap = append(snap, Metric{Name: name, Kind: KindGauge, Value: g.last, Max: g.max})
	}
	return snap
}

// Get returns the metric registered under name.
func (s Snapshot) Get(name string) (Metric, bool) {
	// The snapshot is sorted by name; binary search keeps Get cheap for
	// assertion-heavy tests.
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Metric{}, false
}

// WriteJSON writes the snapshot as deterministic, diff-friendly JSON: one
// metric object per line, fields in fixed order, sorted by name. Byte
// identical across same-seed runs.
func (s Snapshot) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\n  \"metrics\": [\n"); err != nil {
		return fmt.Errorf("simtrace: writing metrics snapshot: %w", err)
	}
	for i, m := range s {
		sep := ","
		if i == len(s)-1 {
			sep = ""
		}
		var line string
		if m.Kind == KindGauge {
			line = fmt.Sprintf("    {\"name\": %q, \"kind\": %q, \"value\": %d, \"max\": %d}%s\n",
				m.Name, m.Kind, m.Value, m.Max, sep)
		} else {
			line = fmt.Sprintf("    {\"name\": %q, \"kind\": %q, \"value\": %d}%s\n",
				m.Name, m.Kind, m.Value, sep)
		}
		if _, err := io.WriteString(w, line); err != nil {
			return fmt.Errorf("simtrace: writing metrics snapshot: %w", err)
		}
	}
	if _, err := io.WriteString(w, "  ]\n}\n"); err != nil {
		return fmt.Errorf("simtrace: writing metrics snapshot: %w", err)
	}
	return nil
}
