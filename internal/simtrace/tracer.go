package simtrace

import (
	"fmt"
	"io"
)

// EventKind distinguishes the three trace event shapes.
type EventKind uint8

const (
	// SpanEvent is a duration on a component's timeline (a pass, a phase).
	SpanEvent EventKind = iota
	// InstantEvent marks a single cycle (an overflow, a crash).
	InstantEvent
	// SampleEvent is one point of a counter time series (occupancy,
	// cumulative lines read); Chrome renders these as counter tracks.
	SampleEvent
	// FlowStartEvent opens a causality arrow at (Comp, Ts); Value carries
	// the flow id that the matching FlowEndEvent closes. Chrome draws the
	// pair as an arrow between the enclosing spans.
	FlowStartEvent
	// FlowEndEvent terminates the causality arrow with the same Value at
	// (Comp, Ts).
	FlowEndEvent
)

// Event is one trace record. Comp and Name are expected to be string
// constants (or strings whose lifetime exceeds the tracer); the tracer
// stores them as-is and never copies, so emitting an event does not
// allocate.
type Event struct {
	Kind  EventKind
	Comp  string // timeline: "circuit", "qpi", "node0", …
	Name  string
	Ts    int64 // cycle stamp (simulated µs for distjoin traces)
	Dur   int64 // SpanEvent only
	Value int64 // SampleEvent only
}

// Tracer is a fixed-capacity ring buffer of events. When full, the oldest
// events are overwritten (and counted as dropped) — a bounded trace of an
// arbitrarily long run, like a hardware trace buffer. The zero value of
// *Tracer (nil) disables tracing; all methods are nil-receiver no-ops.
type Tracer struct {
	ring  []Event
	next  int   // ring index of the next write
	total int64 // events ever emitted
}

// NewTracer returns a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic(fmt.Sprintf("simtrace: tracer capacity %d", capacity))
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Span records a duration of dur cycles starting at cycle ts on comp's
// timeline.
func (t *Tracer) Span(comp, name string, ts, dur int64) {
	t.emit(Event{Kind: SpanEvent, Comp: comp, Name: name, Ts: ts, Dur: dur})
}

// Instant marks cycle ts on comp's timeline.
func (t *Tracer) Instant(comp, name string, ts int64) {
	t.emit(Event{Kind: InstantEvent, Comp: comp, Name: name, Ts: ts})
}

// Sample records one point of the comp/name counter series at cycle ts.
func (t *Tracer) Sample(comp, name string, ts, value int64) {
	t.emit(Event{Kind: SampleEvent, Comp: comp, Name: name, Ts: ts, Value: value})
}

// FlowStart opens causality arrow id at cycle ts on comp's timeline. The
// arrow renders from the span enclosing (comp, ts) to the span enclosing
// the matching FlowEnd. Ids must be unique per trace for Chrome to pair
// them; derive them from the seeded trace-context, never a counter shared
// with another session.
func (t *Tracer) FlowStart(comp, name string, ts, id int64) {
	t.emit(Event{Kind: FlowStartEvent, Comp: comp, Name: name, Ts: ts, Value: id})
}

// FlowEnd closes causality arrow id at cycle ts on comp's timeline.
func (t *Tracer) FlowEnd(comp, name string, ts, id int64) {
	t.emit(Event{Kind: FlowEndEvent, Comp: comp, Name: name, Ts: ts, Value: id})
}

func (t *Tracer) emit(e Event) {
	if t == nil {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.total++
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Cap returns the ring capacity (0 for nil).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.ring)
}

// Total returns how many events were ever emitted.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.total - int64(len(t.ring))
}

// Events returns the surviving events in emission order (oldest first).
// The returned slice is freshly allocated.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// WriteJSON writes the trace in the Chrome trace-event JSON format, loadable
// by chrome://tracing and Perfetto's legacy trace importer. Timestamps are
// emitted as the trace's microsecond field, so one viewer-microsecond is one
// simulated cycle. The output is written field by field in a fixed layout
// and is byte-identical for identical event sequences.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()

	// Assign Chrome thread IDs per component in first-appearance order —
	// deterministic, no map iteration.
	tids := make(map[string]int)
	var comps []string
	for _, e := range events {
		if _, ok := tids[e.Comp]; !ok {
			tids[e.Comp] = len(comps)
			comps = append(comps, e.Comp)
		}
	}

	write := func(format string, args ...interface{}) error {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return fmt.Errorf("simtrace: writing trace: %w", err)
		}
		return nil
	}

	if err := write("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"); err != nil {
		return err
	}
	if err := write("  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"args\": {\"name\": \"fpgapart simulator (1 us = 1 cycle)\"}}"); err != nil {
		return err
	}
	for i, comp := range comps {
		if err := write(",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"args\": {\"name\": %q}}", i, comp); err != nil {
			return err
		}
	}
	for _, e := range events {
		var err error
		switch e.Kind {
		case SpanEvent:
			err = write(",\n  {\"name\": %q, \"ph\": \"X\", \"ts\": %d, \"dur\": %d, \"pid\": 0, \"tid\": %d}",
				e.Name, e.Ts, e.Dur, tids[e.Comp])
		case InstantEvent:
			err = write(",\n  {\"name\": %q, \"ph\": \"i\", \"s\": \"t\", \"ts\": %d, \"pid\": 0, \"tid\": %d}",
				e.Name, e.Ts, tids[e.Comp])
		case SampleEvent:
			// Counter tracks are keyed by (pid, name); qualify with the
			// component so each component's series gets its own track.
			err = write(",\n  {\"name\": %q, \"ph\": \"C\", \"ts\": %d, \"pid\": 0, \"tid\": %d, \"args\": {\"value\": %d}}",
				e.Comp+"."+e.Name, e.Ts, tids[e.Comp], e.Value)
		case FlowStartEvent:
			err = write(",\n  {\"name\": %q, \"cat\": \"flow\", \"ph\": \"s\", \"id\": %d, \"ts\": %d, \"pid\": 0, \"tid\": %d}",
				e.Name, e.Value, e.Ts, tids[e.Comp])
		case FlowEndEvent:
			// bp:"e" binds the arrowhead to the enclosing slice, the legacy
			// importer's convention for flow termination.
			err = write(",\n  {\"name\": %q, \"cat\": \"flow\", \"ph\": \"f\", \"bp\": \"e\", \"id\": %d, \"ts\": %d, \"pid\": 0, \"tid\": %d}",
				e.Name, e.Value, e.Ts, tids[e.Comp])
		}
		if err != nil {
			return err
		}
	}
	return write("\n]}\n")
}
