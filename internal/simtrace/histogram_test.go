package simtrace

import (
	"bytes"
	"strings"
	"testing"
)

// TestBucketBoundaries pins the log2 bucketing at its edges: bucket i ≥ 1
// covers [2^(i-1), 2^i), bucket 0 collects non-positive values.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{255, 8}, {256, 9},
		{1<<20 - 1, 20}, {1 << 20, 21},
		{1<<62 - 1, 62}, {1 << 62, 63},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's lower bound must map into its own bucket, and the
	// value just below it into the previous one.
	for exp := 1; exp < NumHistogramBuckets; exp++ {
		low := BucketLow(exp)
		if got := BucketOf(low); got != exp {
			t.Errorf("BucketOf(BucketLow(%d)=%d) = %d, want %d", exp, low, got, exp)
		}
		if got := BucketOf(low - 1); got != exp-1 {
			t.Errorf("BucketOf(%d) = %d, want %d", low-1, got, exp-1)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("part.sizes")
	for _, v := range []int64{0, 1, 1, 3, 900} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Max() != 900 {
		t.Fatalf("Max = %d, want 900", h.Max())
	}
	for exp, want := range map[int]int64{0: 1, 1: 2, 2: 1, 10: 1} {
		if got := h.Bucket(exp); got != want {
			t.Errorf("Bucket(%d) = %d, want %d", exp, got, want)
		}
	}
	// Same instance on re-registration.
	if r.Histogram("part.sizes") != h {
		t.Fatal("re-registration returned a different histogram")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.us")
	// 100 observations: 90 land in bucket 4 ([8,16)), 10 in bucket 10
	// ([512,1024)) — a latency body with a heavy tail.
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0, 8},   // rank clamps to 1
		{0.5, 8}, // body
		{0.9, 8}, // exactly the last body observation
		{0.95, 512},
		{1, 512},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Max() != 0 || h.Bucket(3) != 0 || h.Name() != "" || h.Quantile(0.99) != 0 {
		t.Fatal("nil histogram must be inert")
	}
	var r *Registry
	if r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f per call", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(12345) }); n != 0 {
		t.Fatalf("nil Histogram.Observe allocates %.1f per call", n)
	}
}

func TestHistogramKindClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a histogram must panic")
		}
	}()
	r.Histogram("x")
}

// TestSnapshotHistogramJSON locks the histogram snapshot line layout and
// that WriteJSONIndent("") + newline equals WriteJSON.
func TestSnapshotHistogramJSON(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b.sizes")
	h.Observe(0)
	h.Observe(5)
	h.Observe(5)
	r.Counter("a.count").Add(3)
	r.Gauge("c.occ").Observe(9)

	snap := r.Snapshot()
	var plain, indented bytes.Buffer
	if err := snap.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := snap.WriteJSONIndent(&indented, ""); err != nil {
		t.Fatal(err)
	}
	indented.WriteString("\n")
	if plain.String() != indented.String() {
		t.Fatalf("WriteJSONIndent(\"\") diverges from WriteJSON:\n%q\nvs\n%q", indented.String(), plain.String())
	}
	want := `{"name": "b.sizes", "kind": "histogram", "value": 3, "max": 5, "buckets": [{"exp": 0, "count": 1}, {"exp": 3, "count": 2}]}`
	if !strings.Contains(plain.String(), want) {
		t.Fatalf("snapshot JSON missing histogram line %s:\n%s", want, plain.String())
	}

	var prefixed bytes.Buffer
	if err := snap.WriteJSONIndent(&prefixed, "    "); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(prefixed.String(), "\n")
	if strings.HasPrefix(lines[0], " ") {
		t.Fatalf("first line must not be indented: %q", lines[0])
	}
	for _, l := range lines[1:] {
		if l != "" && !strings.HasPrefix(l, "    ") {
			t.Fatalf("continuation line missing indent: %q", l)
		}
	}
}
