package simtrace

import "math/bits"

// NumHistogramBuckets is the fixed bucket count of every Histogram: bucket 0
// collects non-positive observations, bucket i (1 ≤ i ≤ 63) collects values
// in [2^(i-1), 2^i) — bucket 63's upper range is capped by int64 itself, so
// every possible observation has a bucket. A fixed power-of-two bucketing
// keeps Observe a single array increment — deterministic, allocation-free,
// and byte-stable in snapshots regardless of the observed value range.
const NumHistogramBuckets = 64

// BucketOf returns the bucket index an observation falls into: 0 for v ≤ 0,
// otherwise 1 + floor(log2(v)) — i.e. v ∈ [2^(i-1), 2^i) maps to bucket i.
// Exported so bucket-boundary tests and renderers share one definition.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket exp (0 for the
// non-positive bucket).
func BucketLow(exp int) int64 {
	if exp <= 0 {
		return 0
	}
	return 1 << (exp - 1)
}

// Histogram is a fixed-bucket log2 histogram (partition sizes, burst
// lengths). Like Counter and Gauge, all methods are nil-receiver no-ops and
// Observe never allocates: disabled runs pay one nil check, enabled runs a
// bounds-checked array increment.
type Histogram struct {
	name    string
	count   int64
	max     int64
	seen    bool
	buckets [NumHistogramBuckets]int64
}

// Observe records v.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[BucketOf(v)]++
	h.count++
	if !h.seen || v > h.max {
		h.max = v
		h.seen = true
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Max returns the largest observed value (0 for nil or never observed).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bucket returns the count in bucket exp (0 for nil or out-of-range exp).
func (h *Histogram) Bucket(exp int) int64 {
	if h == nil || exp < 0 || exp >= NumHistogramBuckets {
		return 0
	}
	return h.buckets[exp]
}

// Name returns the registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Quantile returns the inclusive lower bound of the bucket holding the
// nearest-rank q-quantile observation (q in [0, 1]), or 0 for a nil or
// empty histogram. The log2 bucketing makes it a power-of-two approximation
// — callers needing exact percentiles must keep the raw values — but it is
// deterministic, allocation-free, and enough to eyeball a latency tail from
// a metrics snapshot.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := int64(float64(h.count) * q)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for exp, n := range h.buckets {
		seen += n
		if seen >= rank {
			return BucketLow(exp)
		}
	}
	return BucketLow(NumHistogramBuckets - 1)
}

// sparse returns the non-empty buckets in ascending exponent order — the
// snapshot representation, which stays compact however wide the bucket
// array is.
func (h *Histogram) sparse() []HistogramBucket {
	var out []HistogramBucket
	for exp, n := range h.buckets {
		if n != 0 {
			out = append(out, HistogramBucket{Exp: exp, Count: n})
		}
	}
	return out
}
