package simtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Gauge("alpha").Observe(7)
	r.Counter("mid").Add(1)
	r.Gauge("alpha").Observe(4) // last=4, max stays 7

	snap := r.Snapshot()
	wantOrder := []string{"alpha", "mid", "zeta"}
	if len(snap) != len(wantOrder) {
		t.Fatalf("snapshot has %d metrics, want %d", len(snap), len(wantOrder))
	}
	for i, name := range wantOrder {
		if snap[i].Name != name {
			t.Errorf("snapshot[%d] = %q, want %q", i, snap[i].Name, name)
		}
	}
	a, ok := snap.Get("alpha")
	if !ok || a.Kind != KindGauge || a.Value != 4 || a.Max != 7 {
		t.Errorf("alpha = %+v ok=%v, want gauge value 4 max 7", a, ok)
	}
	z, ok := snap.Get("zeta")
	if !ok || z.Kind != KindCounter || z.Value != 3 {
		t.Errorf("zeta = %+v ok=%v, want counter value 3", z, ok)
	}
	if _, ok := snap.Get("missing"); ok {
		t.Error("Get(missing) reported ok")
	}
}

func TestRegistryReturnsSameMetricPerName(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c2 := r.Counter("x")
	if c1 != c2 {
		t.Error("Counter(x) returned distinct instances")
	}
	c1.Add(2)
	c2.Add(3)
	if got := c1.Value(); got != 5 {
		t.Errorf("shared counter = %d, want 5", got)
	}
}

func TestRegistryKindClashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("clash")
	r.Gauge("clash")
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("anything")
	g := r.Gauge("anything")
	if c != nil || g != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	c.Add(5)
	c.Inc()
	g.Observe(9)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 {
		t.Error("nil metrics accumulated values")
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot has %d metrics", len(snap))
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := int64(0); i < 10; i++ {
		tr.Instant("c", "e", i)
	}
	if tr.Len() != 4 || tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("len=%d total=%d dropped=%d, want 4/10/6", tr.Len(), tr.Total(), tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.Ts != want {
			t.Errorf("event %d has ts %d, want %d (oldest-first order)", i, e.Ts, want)
		}
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Span("c", "s", 0, 5)
	tr.Instant("c", "i", 1)
	tr.Sample("c", "v", 2, 3)
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

// TestTraceJSONWellFormed loads the exported trace back through
// encoding/json and checks the Chrome trace-event shape.
func TestTraceJSONWellFormed(t *testing.T) {
	tr := NewTracer(16)
	tr.Span("circuit", "partition", 0, 100)
	tr.Instant("circuit", "pad_overflow", 42)
	tr.Sample("qpi", "lines_read", 64, 7)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   int64                  `json:"ts"`
			Dur  int64                  `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 1 process_name + 2 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("trace has %d events, want 6:\n%s", len(doc.TraceEvents), buf.String())
	}
	byPh := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
	}
	if byPh["M"] != 3 || byPh["X"] != 1 || byPh["i"] != 1 || byPh["C"] != 1 {
		t.Errorf("event phase mix %v, want 3 M / 1 X / 1 i / 1 C", byPh)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "C" {
			if e.Name != "qpi.lines_read" {
				t.Errorf("counter track name %q, want qpi.lines_read", e.Name)
			}
			if v, ok := e.Args["value"].(float64); !ok || v != 7 {
				t.Errorf("counter args %v, want value 7", e.Args)
			}
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("b.lines").Add(10)
		r.Gauge("a.occ").Observe(3)
		r.Gauge("a.occ").Observe(2)
		return r.Snapshot()
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("identical registries produced different snapshot JSON")
	}
	var doc struct {
		Metrics []struct {
			Name  string `json:"name"`
			Kind  string `json:"kind"`
			Value int64  `json:"value"`
			Max   int64  `json:"max"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, b1.String())
	}
	if len(doc.Metrics) != 2 || doc.Metrics[0].Name != "a.occ" || doc.Metrics[0].Max != 3 {
		t.Errorf("decoded snapshot %+v, want a.occ (max 3) first", doc.Metrics)
	}
}

func TestSessionSummary(t *testing.T) {
	var nilSession *Session
	if !strings.Contains(nilSession.Summary(), "disabled") {
		t.Error("nil session summary does not say disabled")
	}
	s := NewSession()
	s.Metrics.Counter("circuit.cycles").Add(1234)
	s.Metrics.Gauge("fifo.occ").Observe(9)
	s.Tracer.Instant("circuit", "x", 1)
	sum := s.Summary()
	for _, want := range []string{"circuit.cycles", "1234", "fifo.occ", "high water 9", "1 events recorded"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	if s.Window() != DefaultSampleWindow || nilSession.Window() != DefaultSampleWindow {
		t.Error("Window() default wrong")
	}
	s.SampleWindow = 64
	if s.Window() != 64 {
		t.Error("Window() ignored explicit setting")
	}
}

// TestHotPathDoesNotAllocate is the zero-cost guard of the tentpole: the
// per-cycle instrumentation entry points must not allocate — neither when
// tracing is disabled (nil receivers) nor when enabled (preallocated ring
// and counters).
func TestHotPathDoesNotAllocate(t *testing.T) {
	var nc *Counter
	var ng *Gauge
	var nt *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		nc.Add(1)
		nc.Inc()
		ng.Observe(3)
		nt.Sample("c", "v", 1, 2)
		nt.Span("c", "s", 1, 2)
	}); n != 0 {
		t.Errorf("disabled hot path allocates %.1f per run, want 0", n)
	}

	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	tr := NewTracer(64)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Observe(5)
		tr.Sample("c", "v", 1, 2)
	}); n != 0 {
		t.Errorf("enabled hot path allocates %.1f per run, want 0", n)
	}
}
