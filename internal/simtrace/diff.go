package simtrace

// Change classifies one metric's evolution between two snapshots.
type Change string

const (
	// Unchanged: present in both snapshots with identical kind, value,
	// high-water mark and buckets.
	Unchanged Change = "unchanged"
	// Changed: present in both snapshots but any field differs.
	Changed Change = "changed"
	// Added: present only in the new snapshot.
	Added Change = "added"
	// Removed: present only in the old snapshot.
	Removed Change = "removed"
)

// Delta is one entry of a snapshot comparison.
type Delta struct {
	Name   string
	Change Change
	// Old and New are the two sides' metrics (zero value when absent —
	// check OldOK/NewOK).
	Old, New     Metric
	OldOK, NewOK bool
}

// Diff compares the snapshot (the "old" side) against other (the "new"
// side) and returns one Delta per metric name, in sorted name order — the
// same deterministic order the snapshots themselves use. Both snapshots are
// expected to be sorted by name, as Registry.Snapshot and Snapshot.With
// produce them.
func (s Snapshot) Diff(other Snapshot) []Delta {
	out := make([]Delta, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) || j < len(other) {
		switch {
		case j >= len(other) || (i < len(s) && s[i].Name < other[j].Name):
			out = append(out, Delta{Name: s[i].Name, Change: Removed, Old: s[i], OldOK: true})
			i++
		case i >= len(s) || other[j].Name < s[i].Name:
			out = append(out, Delta{Name: other[j].Name, Change: Added, New: other[j], NewOK: true})
			j++
		default:
			d := Delta{Name: s[i].Name, Change: Unchanged, Old: s[i], New: other[j], OldOK: true, NewOK: true}
			if !metricEqual(s[i], other[j]) {
				d.Change = Changed
			}
			out = append(out, d)
			i++
			j++
		}
	}
	return out
}

// metricEqual reports whether two snapshotted metrics are identical in
// every field, including histogram buckets.
func metricEqual(a, b Metric) bool {
	if a.Kind != b.Kind || a.Value != b.Value || a.Max != b.Max || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}
