// Package simtrace is the simulator's observability layer: a deterministic,
// cycle-stamped metrics registry and event tracer that the circuit simulator
// (internal/core), its hardware primitives (internal/fpga), the QPI
// end-point model (internal/qpi) and the distributed join (distjoin) report
// into.
//
// Two design rules govern everything here:
//
//  1. Determinism. Nothing in this package reads the host clock, draws
//     randomness, or iterates a map: every timestamp is a simulated cycle
//     count (or simulated microseconds for the distributed join), metric
//     snapshots are emitted in sorted name order, and trace JSON is written
//     field by field with a fixed layout. Two runs with the same seed
//     produce byte-identical snapshots and trace files — the property the
//     fpgavet determinism analyzer enforces and the regression tests lock
//     down.
//
//  2. Zero cost when disabled. Every hot-path entry point (Counter.Add,
//     Gauge.Observe, Tracer.Sample, …) is a nil-receiver no-op, so an
//     uninstrumented run pays one nil check per call site and allocates
//     nothing (guarded by testing.AllocsPerRun). When enabled, the ring
//     buffer and counters are preallocated, so the per-cycle path still
//     does not allocate.
//
// A Session bundles one run's Registry and Tracer. The trace exports to the
// Chrome trace-event JSON format, so `chrome://tracing` (or Perfetto's
// legacy loader) renders a partitioning run as a per-component timeline;
// one trace "microsecond" is one FPGA clock cycle.
package simtrace

import (
	"fmt"
	"strings"
)

// DefaultSampleWindow is the cycle-window size at which the instrumented
// simulator emits periodic counter samples when the Session does not
// specify one. Powers of two keep the modulo cheap.
const DefaultSampleWindow = 256

// DefaultTraceCapacity is the event capacity of a Session's ring buffer:
// enough for phase spans plus windowed samples of multi-million-tuple runs
// without unbounded growth.
const DefaultTraceCapacity = 1 << 16

// Session bundles the metrics registry and event tracer threaded through
// one simulated run (or a sequence of runs on the same circuit — counters
// accumulate). The zero value of *Session (nil) disables all tracing.
type Session struct {
	Metrics *Registry
	Tracer  *Tracer

	// SampleWindow is the cycle-window granularity of periodic counter
	// samples; 0 means DefaultSampleWindow.
	SampleWindow int64
}

// NewSession returns a Session with a fresh registry and a ring buffer of
// DefaultTraceCapacity events.
func NewSession() *Session {
	return &Session{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(DefaultTraceCapacity),
	}
}

// Window returns the configured sample window, defaulting when unset.
// Safe on a nil Session (returns the default).
func (s *Session) Window() int64 {
	if s == nil || s.SampleWindow <= 0 {
		return DefaultSampleWindow
	}
	return s.SampleWindow
}

// Snapshot returns the session's metric snapshot, surfacing trace-ring
// overflow as a `trace.dropped_events` counter. The counter appears only
// when events were actually dropped, so snapshots of runs that fit the ring
// stay byte-identical to a plain Metrics.Snapshot() — goldens and BENCH
// baselines do not move until a run genuinely loses events. Safe on nil
// (returns nil).
func (s *Session) Snapshot() Snapshot {
	if s == nil {
		return nil
	}
	snap := s.Metrics.Snapshot()
	if d := s.Tracer.Dropped(); d > 0 {
		snap = snap.With(Metric{Name: "trace.dropped_events", Kind: KindCounter, Value: d})
	}
	return snap
}

// Summary renders the session as a human-readable text table: every metric
// in sorted name order, then the tracer's occupancy line. Safe on nil
// (returns a "tracing disabled" note).
func (s *Session) Summary() string {
	if s == nil {
		return "simtrace: disabled\n"
	}
	var b strings.Builder
	snap := s.Metrics.Snapshot()
	if len(snap) == 0 {
		b.WriteString("simtrace: no metrics recorded\n")
	} else {
		width := 0
		for _, m := range snap {
			if len(m.Name) > width {
				width = len(m.Name)
			}
		}
		for _, m := range snap {
			switch m.Kind {
			case KindGauge:
				fmt.Fprintf(&b, "%-*s  %12d  (high water %d)\n", width, m.Name, m.Value, m.Max)
			case KindHistogram:
				fmt.Fprintf(&b, "%-*s  %12d  (observations, max %d, %d buckets)\n",
					width, m.Name, m.Value, m.Max, len(m.Buckets))
			default:
				fmt.Fprintf(&b, "%-*s  %12d\n", width, m.Name, m.Value)
			}
		}
	}
	if s.Tracer != nil {
		fmt.Fprintf(&b, "trace: %d events recorded (%d dropped, capacity %d)\n",
			s.Tracer.Len(), s.Tracer.Dropped(), s.Tracer.Cap())
		if d := s.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(&b, "WARNING: trace ring overflowed — %d oldest events were overwritten; causal analysis over this trace is incomplete (raise the tracer capacity)\n", d)
		}
	}
	return b.String()
}
