package simtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFlowEventsJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Span("sched", "queue_wait", 0, 40)
	tr.FlowStart("sched", "req0", 40, 1234)
	tr.Span("fpga0", "exec", 40, 100)
	tr.FlowEnd("fpga0", "req0", 40, 1234)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out := buf.String()
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, out)
	}
	var starts, ends int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "s":
			starts++
			if e["id"] != float64(1234) {
				t.Errorf("flow start id = %v, want 1234", e["id"])
			}
			if e["cat"] != "flow" {
				t.Errorf("flow start cat = %v, want flow", e["cat"])
			}
		case "f":
			ends++
			if e["bp"] != "e" {
				t.Errorf("flow end bp = %v, want \"e\"", e["bp"])
			}
			if e["id"] != float64(1234) {
				t.Errorf("flow end id = %v, want 1234", e["id"])
			}
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("flow events: %d starts, %d ends, want 1 and 1\n%s", starts, ends, out)
	}
}

func TestNilTracerFlowNoOp(t *testing.T) {
	var tr *Tracer
	tr.FlowStart("c", "n", 0, 1)
	tr.FlowEnd("c", "n", 0, 1)
	if tr.Total() != 0 {
		t.Fatalf("nil tracer recorded %d events", tr.Total())
	}
}

func TestSessionSnapshotSurfacesDroppedEvents(t *testing.T) {
	sess := &Session{Metrics: NewRegistry(), Tracer: NewTracer(2)}
	sess.Metrics.Counter("x").Add(1)

	// No overflow: the snapshot must equal the plain registry snapshot, so
	// goldens of runs that fit the ring never move.
	before := sess.Snapshot()
	for _, m := range before {
		if m.Name == "trace.dropped_events" {
			t.Fatalf("trace.dropped_events present without any drop")
		}
	}
	if len(before) != len(sess.Metrics.Snapshot()) {
		t.Fatalf("snapshot gained metrics without drops")
	}

	for i := int64(0); i < 5; i++ {
		sess.Tracer.Instant("c", "e", i)
	}
	snap := sess.Snapshot()
	var got int64 = -1
	for _, m := range snap {
		if m.Name == "trace.dropped_events" {
			got = m.Value
		}
	}
	if want := sess.Tracer.Dropped(); got != want {
		t.Fatalf("trace.dropped_events = %d, want %d", got, want)
	}

	if !strings.Contains(sess.Summary(), "WARNING: trace ring overflowed") {
		t.Fatalf("Summary lacks the overflow warning:\n%s", sess.Summary())
	}
}

func TestSessionSnapshotNilSafe(t *testing.T) {
	var sess *Session
	if sess.Snapshot() != nil {
		t.Fatalf("nil session snapshot not nil")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every quantile is 0.
	r := NewRegistry()
	h := r.Histogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}

	// Single-bucket histogram: every quantile lands in that bucket.
	h2 := r.Histogram("single")
	for i := 0; i < 7; i++ {
		h2.Observe(5) // bucket [4, 8)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h2.Quantile(q); got != 4 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 4", q, got)
		}
	}

	// Single observation.
	h3 := r.Histogram("one")
	h3.Observe(1000) // bucket [512, 1024)
	for _, q := range []float64{0, 1} {
		if got := h3.Quantile(q); got != 512 {
			t.Errorf("one-observation Quantile(%v) = %d, want 512", q, got)
		}
	}
}
