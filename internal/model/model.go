// Package model implements the analytical cost model of the FPGA
// partitioner (Section 4.6, equations 1–7, Table 3 notation) and its
// validation against the measured operating points (Section 4.8).
//
// The model states that the partitioner's total processing rate is the
// minimum of the circuit's pipeline rate and the memory system's rate:
//
//	P_total = min{ 1 / (f_mode · (1/B_FPGA + L_FPGA/N)),  B(r) / (W·(r+1)) }
//
// where B_FPGA = CL/W · f_FPGA is the circuit rate in tuples/s, L_FPGA is
// the pipeline latency, f_mode doubles the cost in HIST mode (two passes),
// and the second term is the memory rate for a read-to-write ratio r. On
// the Xeon+FPGA platform the memory term always wins; with ≥ 25.6 GB/s the
// circuit term takes over at 1.6 billion tuples/s.
package model

import (
	"fpgapart/platform"
)

// Table 3 constants.
const (
	// CacheLine is CL, the width of a cache line in bytes.
	CacheLine = 64
	// CyclesHashing is c_hashing, the hash pipeline depth.
	CyclesHashing = 5
	// CyclesWriteComb is c_writecomb, the write-combiner flush worst case
	// (8 combiners × 8192 partitions + pipeline drain).
	CyclesWriteComb = 65540
	// CyclesFIFOs is c_fifos, the FIFO traversal latency.
	CyclesFIFOs = 4
)

// Params instantiates the model for one configuration.
type Params struct {
	// FPGAClockHz is f_FPGA (200 MHz on the paper's platform).
	FPGAClockHz float64
	// TupleWidth is W in bytes.
	TupleWidth int
	// N is the number of tuples.
	N int64
	// Hist selects HIST mode (f_mode = 2); false selects PAD (f_mode = 1).
	Hist bool
	// ReadWriteRatio is r: 2 for HIST/RID, 1 for PAD/RID and HIST/VRID,
	// 0.5 for PAD/VRID. Use Ratio to derive it from a mode.
	ReadWriteRatio float64
	// Bandwidth is the link's B(r) curve.
	Bandwidth platform.BandwidthCurve
}

// ModeFactor returns f_mode.
func (p Params) ModeFactor() float64 {
	if p.Hist {
		return 2
	}
	return 1
}

// CircuitRate returns B_FPGA = CL/W · f_FPGA in tuples/s: one cache line of
// tuples per clock cycle.
func (p Params) CircuitRate() float64 {
	return CacheLine / float64(p.TupleWidth) * p.FPGAClockHz
}

// Latency returns L_FPGA in seconds (equation 4).
func (p Params) Latency() float64 {
	return (CyclesHashing + CyclesWriteComb + CyclesFIFOs) / p.FPGAClockHz
}

// ProcessRate returns the pipeline-bound rate P_FPGA in tuples/s
// (equation 5).
func (p Params) ProcessRate() float64 {
	return 1 / (p.ModeFactor() * (1/p.CircuitRate() + p.Latency()/float64(p.N)))
}

// MemoryRate returns the memory-bound rate P_mem = B(r)/(W·(r+1)) in
// tuples/s (equation 6).
func (p Params) MemoryRate() float64 {
	r := p.ReadWriteRatio
	return p.Bandwidth.AtRatio(r) * 1e9 / (float64(p.TupleWidth) * (r + 1))
}

// TotalRate returns P_total (equation 7).
func (p Params) TotalRate() float64 {
	proc, mem := p.ProcessRate(), p.MemoryRate()
	if proc < mem {
		return proc
	}
	return mem
}

// MemoryBound reports whether the memory term limits the rate.
func (p Params) MemoryBound() bool {
	return p.MemoryRate() <= p.ProcessRate()
}

// Mode identifies the four operating modes for Ratio.
type Mode struct {
	Hist bool
	VRID bool
}

// Ratio returns the read-to-write byte ratio r of the mode (Section 4.8):
// HIST/RID reads the data twice per write (r = 2); PAD/RID and HIST/VRID
// read as much as they write (r = 1); PAD/VRID reads half (r = 0.5).
func Ratio(m Mode) float64 {
	switch {
	case m.Hist && !m.VRID:
		return 2
	case !m.Hist && m.VRID:
		return 0.5
	default:
		return 1
	}
}

// ForMode builds Params for one of the paper's four modes on the given
// platform, with 8-byte tuples and the given N.
func ForMode(m Mode, p *platform.Platform, n int64) Params {
	return Params{
		FPGAClockHz:    p.FPGAClockHz,
		TupleWidth:     8,
		N:              n,
		Hist:           m.Hist,
		ReadWriteRatio: Ratio(m),
		Bandwidth:      p.FPGAAlone,
	}
}

// Validation reproduces the three operating points of Section 4.8 for
// N = 128e6 and W = 8 B on the Xeon+FPGA platform.
type Validation struct {
	Mode      string
	Ratio     float64
	Bandwidth float64 // B(r) in GB/s
	Predicted float64 // tuples/s
	Paper     float64 // the paper's derived value, tuples/s
}

// Validate returns the Section 4.8 table.
func Validate(p *platform.Platform) []Validation {
	const n = 128e6
	cases := []struct {
		name  string
		mode  Mode
		paper float64
	}{
		{"HIST/RID", Mode{Hist: true}, 294e6},
		{"HIST/VRID & PAD/RID", Mode{}, 435e6}, // r = 1 covers both
		{"PAD/VRID", Mode{VRID: true}, 495e6},
	}
	out := make([]Validation, len(cases))
	for i, c := range cases {
		params := ForMode(c.mode, p, n)
		out[i] = Validation{
			Mode:      c.name,
			Ratio:     params.ReadWriteRatio,
			Bandwidth: params.Bandwidth.AtRatio(params.ReadWriteRatio),
			Predicted: params.TotalRate(),
			Paper:     c.paper,
		}
	}
	return out
}

// JoinPrediction estimates the FPGA partitioning time of one relation for
// the "model prediction" marks in the paper's join figures.
func JoinPrediction(m Mode, p *platform.Platform, n int64) float64 {
	return float64(n) / ForMode(m, p, n).TotalRate()
}
