package model

import (
	"math"
	"testing"

	"fpgapart/platform"
)

func xeonParams(hist bool, ratio float64, n int64) Params {
	p := platform.XeonFPGA()
	return Params{
		FPGAClockHz:    p.FPGAClockHz,
		TupleWidth:     8,
		N:              n,
		Hist:           hist,
		ReadWriteRatio: ratio,
		Bandwidth:      p.FPGAAlone,
	}
}

func TestCircuitRateIsLinePerCycle(t *testing.T) {
	p := xeonParams(false, 1, 128e6)
	// 64 B line / 8 B tuples × 200 MHz = 1.6 billion tuples/s.
	if got := p.CircuitRate(); math.Abs(got-1.6e9) > 1e3 {
		t.Errorf("CircuitRate = %v, want 1.6e9", got)
	}
	p.TupleWidth = 64
	if got := p.CircuitRate(); math.Abs(got-200e6) > 1e3 {
		t.Errorf("CircuitRate(64B) = %v, want 2e8", got)
	}
}

func TestLatencyMatchesPaperConstant(t *testing.T) {
	p := xeonParams(false, 1, 128e6)
	// (5 + 65540 + 4) cycles at 5 ns.
	want := 65549.0 * 5e-9
	if got := p.Latency(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Latency = %v, want %v", got, want)
	}
}

func TestSection48Validation(t *testing.T) {
	// The paper derives 294/435/495 Mtuples/s for r = 2/1/0.5; our
	// calibrated curve must land within 2% of those.
	for _, v := range Validate(platform.XeonFPGA()) {
		rel := math.Abs(v.Predicted-v.Paper) / v.Paper
		if rel > 0.02 {
			t.Errorf("%s: predicted %.0f, paper %.0f (%.1f%% off)", v.Mode, v.Predicted/1e6, v.Paper/1e6, rel*100)
		}
	}
}

func TestMemoryBoundOnXeonFPGA(t *testing.T) {
	// On the real platform the memory term always limits (Section 4.6).
	for _, m := range []Mode{{}, {Hist: true}, {VRID: true}, {Hist: true, VRID: true}} {
		p := ForMode(m, platform.XeonFPGA(), 128e6)
		if !p.MemoryBound() {
			t.Errorf("mode %+v should be memory-bound on Xeon+FPGA", m)
		}
	}
}

func TestCircuitBoundOnRawWrapper(t *testing.T) {
	// With the 25.6 GB/s wrapper the circuit term takes over: 1.6 Gtuples/s
	// in PAD mode, ~0.8 in HIST (Section 4.8).
	raw := platform.RawFPGA()
	pad := ForMode(Mode{}, raw, 128e6)
	if pad.MemoryBound() {
		t.Error("PAD mode should be circuit-bound at 25.6 GB/s")
	}
	if got := pad.TotalRate(); math.Abs(got-1.6e9)/1.6e9 > 0.01 {
		t.Errorf("raw PAD rate = %v, want ~1.6e9", got)
	}
	hist := ForMode(Mode{Hist: true}, raw, 128e6)
	if got := hist.TotalRate(); math.Abs(got-0.8e9)/0.8e9 > 0.01 {
		t.Errorf("raw HIST rate = %v, want ~0.8e9", got)
	}
}

func TestLatencyHiddenForLargeN(t *testing.T) {
	// For sufficiently large N the latency term vanishes: process rate
	// approaches B_FPGA/f_mode.
	big := xeonParams(false, 1, 128e6)
	// (the paper derives 1.593e9 vs the 1.6e9 asymptote — a 0.4% gap).
	if got, want := big.ProcessRate(), big.CircuitRate(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("latency not hidden at N=128e6: %v vs %v", got, want)
	}
	// For tiny N it matters.
	tiny := xeonParams(false, 1, 1000)
	if tiny.ProcessRate() > 0.1*tiny.CircuitRate() {
		t.Errorf("latency should dominate at N=1000: %v", tiny.ProcessRate())
	}
}

func TestHistHalvesProcessRate(t *testing.T) {
	pad := xeonParams(false, 1, 128e6)
	hist := xeonParams(true, 1, 128e6)
	ratio := pad.ProcessRate() / hist.ProcessRate()
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("PAD/HIST process rate ratio = %v, want 2", ratio)
	}
}

func TestRatioTable(t *testing.T) {
	cases := []struct {
		m    Mode
		want float64
	}{
		{Mode{Hist: true}, 2},
		{Mode{}, 1},
		{Mode{Hist: true, VRID: true}, 1},
		{Mode{VRID: true}, 0.5},
	}
	for _, c := range cases {
		if got := Ratio(c.m); got != c.want {
			t.Errorf("Ratio(%+v) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestMemoryRateFormula(t *testing.T) {
	// Hand-check equation 6 with a flat curve: B = 8 GB/s, W = 8, r = 1:
	// 8e9 / (8·2) = 500e6 tuples/s.
	p := Params{
		FPGAClockHz:    200e6,
		TupleWidth:     8,
		N:              1e6,
		ReadWriteRatio: 1,
		Bandwidth:      platform.BandwidthCurve{Points: []float64{8, 8}},
	}
	if got := p.MemoryRate(); math.Abs(got-500e6) > 1 {
		t.Errorf("MemoryRate = %v, want 5e8", got)
	}
}

func TestJoinPrediction(t *testing.T) {
	// Partitioning 128e6 tuples at ~435 Mtuples/s (PAD/RID) takes ~0.29 s.
	sec := JoinPrediction(Mode{}, platform.XeonFPGA(), 128e6)
	if sec < 0.25 || sec > 0.35 {
		t.Errorf("JoinPrediction = %v s, want ~0.29", sec)
	}
}

func TestWiderTuplesLowerRates(t *testing.T) {
	prev := math.Inf(1)
	for _, w := range []int{8, 16, 32, 64} {
		p := xeonParams(false, 1, 128e6)
		p.TupleWidth = w
		rate := p.TotalRate()
		if rate >= prev {
			t.Errorf("rate should fall with width: %d B → %v", w, rate)
		}
		prev = rate
	}
}
