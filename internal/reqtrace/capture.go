package reqtrace

import "io"

// Capture configures causal tracing for a multi-shard run and collects its
// outputs. Attach an empty Capture to enable tracing; after the run it
// holds the per-request traces and the merged flight-recorder timeline
// (router events plus every shard's events, shard components prefixed
// "s<N>.", job ids remapped to request indices, ordered by virtual time).
// The flight timeline is filled even when the run fails — that is the
// postmortem case it exists for.
type Capture struct {
	// FlightCap bounds each flight-recorder ring (router and per shard);
	// DefaultFlightCap when 0.
	FlightCap int

	// Traces holds one RequestTrace per submitted request, in request
	// order, filled on successful completion.
	Traces []RequestTrace
	// Flight is the merged flight-recorder timeline; FlightDropped counts
	// events overwritten across all rings.
	Flight        []FlightEvent
	FlightDropped int64
}

// WritePostmortem dumps the merged flight timeline as a text postmortem.
func (c *Capture) WritePostmortem(w io.Writer, cause string) error {
	return WritePostmortem(w, cause, c.Flight, c.FlightDropped)
}
