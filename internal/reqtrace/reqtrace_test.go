package reqtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceIDDerivation(t *testing.T) {
	if NewTraceID(42, 0) != NewTraceID(42, 0) {
		t.Fatal("trace id not a pure function of (seed, index)")
	}
	if NewTraceID(42, 0) == NewTraceID(42, 1) {
		t.Fatal("trace ids collide across indices")
	}
	if NewTraceID(42, 0) == NewTraceID(43, 0) {
		t.Fatal("trace ids collide across seeds")
	}
	id := NewTraceID(42, 7)
	if id.SpanID(0) == id.SpanID(1) {
		t.Fatal("span ids collide across sequence numbers")
	}
}

// syntheticJob builds a job that exercises every decomposition component:
// queue wait, an aborted FPGA attempt (reconfig + batch waits + spill), a
// requeue gap, then a successful retry.
func syntheticJob() JobRecord {
	return JobRecord{
		ID: 0, Tag: 0, ArrivalUS: 100, DoneUS: 1100, Status: "done",
		Attempts: []Attempt{
			{Resource: "fpga0", FPGA: true, StartUS: 150,
				ReconfigUS: 40, PreWaitUS: 10, ExecUS: 200, SpillUS: 30, DrainUS: 20,
				Aborted: true},
			{Resource: "fpga1", FPGA: true, StartUS: 600,
				ReconfigUS: 40, ExecUS: 300, DrainUS: 60},
		},
	}
}

func TestBuildConservation(t *testing.T) {
	job := syntheticJob()
	step := RouterStep{ArrivalUS: 60, AdmitUS: 100, Throttled: true, Shard: 2, Primary: 1}
	rt := BuildRouted(42, 0, step, &job)

	if !rt.Conserved() {
		t.Fatalf("breakdown sum %d != latency %d\n%+v", rt.Breakdown.Sum(), rt.LatencyUS, rt.Breakdown)
	}
	if rt.LatencyUS != 1100-60 {
		t.Fatalf("latency = %d, want %d", rt.LatencyUS, 1100-60)
	}
	if !rt.Rerouted || !rt.Throttled || rt.Shard != 2 {
		t.Fatalf("router outcome not echoed: %+v", rt)
	}
	want := Breakdown{}
	want[CompQuotaWait] = 40  // 60 → 100
	want[CompQueueWait] = 50  // 100 → 150
	want[CompReconfig] = 80   // 40 per attempt
	want[CompBatchWait] = 10  // attempt 0 only
	want[CompExec] = 500      // 200 + 300
	want[CompSpill] = 30      // attempt 0 only
	want[CompBatchDrain] = 80 // 20 + 60
	// gap 450→600 between attempts, plus 1000→1100 after attempt 1's end.
	want[CompRetryWait] = 150 + 100
	if rt.Breakdown != want {
		t.Fatalf("breakdown = %+v, want %+v", rt.Breakdown, want)
	}

	// The span chain threads Parent = previous span and tiles the timeline.
	if rt.Spans[0].Kind != CompRequest || rt.Spans[0].Parent != 0 {
		t.Fatalf("root span malformed: %+v", rt.Spans[0])
	}
	for i := 1; i < len(rt.Spans); i++ {
		if rt.Spans[i].Parent != rt.Spans[i-1].ID {
			t.Fatalf("span %d parent does not chain", i)
		}
	}
	cursor := rt.ArrivalUS
	for i := 1; i < len(rt.Spans); i++ {
		sp := &rt.Spans[i]
		if sp.StartUS != cursor {
			t.Fatalf("span %d (%s) starts at %d, cursor %d — timeline not tiled",
				i, sp.Kind, sp.StartUS, cursor)
		}
		cursor += sp.DurUS
	}
	if cursor != rt.DoneUS {
		t.Fatalf("spans end at %d, want DoneUS %d", cursor, rt.DoneUS)
	}

	wantSig := "quota_wait>queue_wait>reconfig>batch_wait>exec>spill>batch_drain>retry_wait>reconfig>exec>batch_drain>retry_wait"
	if got := rt.PathSignature(); got != wantSig {
		t.Fatalf("path signature = %q, want %q", got, wantSig)
	}
}

func TestBuildUnrouted(t *testing.T) {
	rt := BuildRouted(42, 3, RouterStep{ArrivalUS: 500, AdmitUS: 500, Shard: -1, Primary: 0}, nil)
	if rt.Status != "unrouted" || rt.LatencyUS != 0 || !rt.Conserved() {
		t.Fatalf("unrouted trace malformed: %+v", rt)
	}
	if rt.PathSignature() != "instant" {
		t.Fatalf("unrouted path = %q, want instant", rt.PathSignature())
	}
}

func TestAnalyzeDeterministicAndRanked(t *testing.T) {
	var traces []RequestTrace
	for i := 0; i < 20; i++ {
		job := syntheticJob()
		job.ID = i
		job.ArrivalUS += int64(i) * 10
		job.DoneUS += int64(i) * 10
		for a := range job.Attempts {
			job.Attempts[a].StartUS += int64(i) * 10
		}
		if i%4 == 0 { // a second, cheaper path: single clean attempt
			job.Attempts = job.Attempts[1:]
		}
		traces = append(traces, BuildJob(42, &job))
	}

	p := Analyze(traces, 2)
	if p.Violations != 0 {
		t.Fatalf("%d conservation violations on synthetic traces", p.Violations)
	}
	if p.Requests != 20 {
		t.Fatalf("requests = %d, want 20", p.Requests)
	}
	if len(p.Paths) != 2 {
		t.Fatalf("topK not honored: %d paths", len(p.Paths))
	}
	if p.Paths[0].TotalUS < p.Paths[1].TotalUS {
		t.Fatalf("paths not ranked by total time: %+v", p.Paths)
	}
	var compSum int64
	for c := 0; c < NumComponents; c++ {
		compSum += p.Comp[c].TotalUS
	}
	if compSum != p.TotalUS {
		t.Fatalf("aggregate components sum %d != total latency %d", compSum, p.TotalUS)
	}

	if a, b := Analyze(traces, 2).Format(), Analyze(traces, 2).Format(); a != b {
		t.Fatalf("Analyze().Format() not deterministic:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(p.Format(), "critical paths") {
		t.Fatalf("report lacks critical paths section:\n%s", p.Format())
	}
}

func TestFlightRingDropsOldest(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ {
		f.Record(FlightEvent{US: int64(i), Comp: "sched", Kind: "dispatch", Job: i})
	}
	ev := f.Events()
	if len(ev) != 4 || f.Dropped() != 2 {
		t.Fatalf("ring: %d events, %d dropped; want 4 and 2", len(ev), f.Dropped())
	}
	for i, e := range ev {
		if e.Job != i+2 {
			t.Fatalf("event %d is job %d, want %d (oldest-first order broken)", i, e.Job, i+2)
		}
	}
}

func TestPostmortemDeterministic(t *testing.T) {
	rec := NewRecorder(8)
	rec.Admit(0, 0, 10)
	rec.Event(10, "sched", "dispatch", 0, 1)
	rec.Event(90, "fpga0", "fault", 0, 1)
	rec.Event(200, "sched", "timeout", 0, 2)

	var a, b bytes.Buffer
	if err := WritePostmortem(&a, "job 0 timed out", rec.FlightEvents(), rec.FlightDropped()); err != nil {
		t.Fatal(err)
	}
	if err := WritePostmortem(&b, "job 0 timed out", rec.FlightEvents(), rec.FlightDropped()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("postmortem bytes differ across identical dumps")
	}
	out := a.String()
	for _, want := range []string{"cause: job 0 timed out", "fault", "timeout"} {
		if !strings.Contains(out, want) {
			t.Fatalf("postmortem lacks %q:\n%s", want, out)
		}
	}
}

func TestBreakdownJSONParsesAndDeterministic(t *testing.T) {
	job := syntheticJob()
	traces := []RequestTrace{BuildJob(42, &job)}
	var a, b bytes.Buffer
	if err := WriteBreakdownJSON(&a, traces); err != nil {
		t.Fatal(err)
	}
	if err := WriteBreakdownJSON(&b, traces); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("breakdown JSON differs across identical writes")
	}
	var doc struct {
		Requests []struct {
			Index     int              `json:"index"`
			LatencyUS int64            `json:"latency_us"`
			Conserved bool             `json:"conserved"`
			Breakdown map[string]int64 `json:"breakdown"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("breakdown JSON does not parse: %v\n%s", err, a.String())
	}
	if len(doc.Requests) != 1 || !doc.Requests[0].Conserved {
		t.Fatalf("breakdown JSON content wrong: %+v", doc)
	}
	var sum int64
	for _, v := range doc.Requests[0].Breakdown {
		sum += v
	}
	if sum != doc.Requests[0].LatencyUS {
		t.Fatalf("JSON breakdown sums to %d, latency %d", sum, doc.Requests[0].LatencyUS)
	}
}

// TestDisabledRecorderZeroAlloc pins the zero-cost-when-disabled rule: every
// hot entry point on a nil recorder must not allocate.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.Admit(0, 0, 0)
		r.Attempt(0, Attempt{Resource: "fpga0", ExecUS: 1})
		r.Finish(0, "done", 1)
		r.Event(0, "sched", "dispatch", 0, 0)
		var f *Flight
		f.Record(FlightEvent{})
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocates %.1f per run, want 0", allocs)
	}
}

// TestFlightRecordZeroAlloc pins that an enabled flight ring never allocates
// after construction (the ring is preallocated; overwrite reuses slots).
func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlight(8)
	for i := 0; i < 16; i++ { // fill past capacity so append never grows
		f.Record(FlightEvent{US: int64(i)})
	}
	allocs := testing.AllocsPerRun(100, func() {
		f.Record(FlightEvent{US: 1, Comp: "sched", Kind: "dispatch", Job: 1, Arg: 1})
	})
	if allocs != 0 {
		t.Fatalf("flight ring allocates %.1f per record, want 0", allocs)
	}
}
