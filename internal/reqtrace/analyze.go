package reqtrace

import (
	"fmt"
	"sort"
	"strings"
)

// CompStat aggregates one component across a run: total virtual time and
// exact nearest-rank percentiles over the per-request values (zeros
// included, so a component a request never touched counts as 0 for it).
type CompStat struct {
	TotalUS             int64
	P50US, P95US, P99US int64
}

// PathProfile is one critical-path signature's aggregate.
type PathProfile struct {
	// Signature is the ">"-joined component sequence (PathSignature).
	Signature string
	// Count is how many requests took this path; TotalUS their summed
	// latency — the profile's ranking key.
	Count   int
	TotalUS int64
}

// Profile is a run's aggregated critical-path analysis.
type Profile struct {
	// Requests counts analyzed requests (unrouted requests are skipped);
	// TotalUS sums their latencies.
	Requests int
	TotalUS  int64
	// Violations counts requests whose decomposition does not sum to their
	// latency — always 0 unless the scheduler hooks drift from the charged
	// intervals; gated at 0 in the perfbench suite.
	Violations int
	// Comp holds per-component totals and percentiles.
	Comp [NumComponents]CompStat
	// Paths are the top-K critical-path signatures by total virtual time
	// (ties break lexicographically), most expensive first.
	Paths []PathProfile
	// TailCutUS is the p99 latency; TailShareX100 attributes the latency
	// of requests at or above the cut to components, in percent ×100 of
	// the cohort's total latency.
	TailCutUS     int64
	TailRequests  int
	TailShareX100 [NumComponents]int64
}

// Analyze aggregates a run's request traces into a critical-path profile,
// keeping the topK most expensive path signatures. Deterministic: sorted
// copies, explicit tie-breaks, no map iteration.
func Analyze(traces []RequestTrace, topK int) *Profile {
	p := &Profile{}
	if topK <= 0 {
		topK = 3
	}

	lats := make([]int64, 0, len(traces))
	perComp := make([][]int64, NumComponents)
	pathIdx := make(map[string]int)
	var paths []PathProfile
	for i := range traces {
		rt := &traces[i]
		if rt.Status == "unrouted" {
			continue
		}
		p.Requests++
		p.TotalUS += rt.LatencyUS
		if !rt.Conserved() {
			p.Violations++
		}
		lats = append(lats, rt.LatencyUS)
		for c := 0; c < NumComponents; c++ {
			p.Comp[c].TotalUS += rt.Breakdown[c]
			perComp[c] = append(perComp[c], rt.Breakdown[c])
		}
		sig := rt.PathSignature()
		k, ok := pathIdx[sig]
		if !ok {
			k = len(paths)
			pathIdx[sig] = k
			paths = append(paths, PathProfile{Signature: sig})
		}
		paths[k].Count++
		paths[k].TotalUS += rt.LatencyUS
	}
	if p.Requests == 0 {
		return p
	}

	for c := 0; c < NumComponents; c++ {
		vals := perComp[c]
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		p.Comp[c].P50US = nearestRank(vals, 50)
		p.Comp[c].P95US = nearestRank(vals, 95)
		p.Comp[c].P99US = nearestRank(vals, 99)
	}

	sort.Slice(paths, func(a, b int) bool {
		if paths[a].TotalUS != paths[b].TotalUS {
			return paths[a].TotalUS > paths[b].TotalUS
		}
		return paths[a].Signature < paths[b].Signature
	})
	if len(paths) > topK {
		paths = paths[:topK]
	}
	p.Paths = paths

	// Tail attribution: the component mix of requests at or above the p99
	// latency — "p99 requests spend N% in queue wait".
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	p.TailCutUS = nearestRank(lats, 99)
	var tailTotal int64
	var tailComp [NumComponents]int64
	for i := range traces {
		rt := &traces[i]
		if rt.Status == "unrouted" || rt.LatencyUS < p.TailCutUS {
			continue
		}
		p.TailRequests++
		tailTotal += rt.LatencyUS
		for c := 0; c < NumComponents; c++ {
			tailComp[c] += rt.Breakdown[c]
		}
	}
	if tailTotal > 0 {
		for c := 0; c < NumComponents; c++ {
			p.TailShareX100[c] = tailComp[c] * 10000 / tailTotal
		}
	}
	return p
}

// nearestRank returns the exact nearest-rank q-th percentile of sorted
// (ascending) values, 0 when empty.
func nearestRank(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*q + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Format renders the profile as a deterministic text report: per-component
// totals and percentiles, the top critical paths, and the p99 tail mix.
func (p *Profile) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reqtrace: %d requests, %d us total latency", p.Requests, p.TotalUS)
	if p.Violations > 0 {
		fmt.Fprintf(&b, ", %d CONSERVATION VIOLATIONS", p.Violations)
	}
	b.WriteString("\n")
	if p.Requests == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %12s %8s %10s %10s %10s\n",
		"component", "total_us", "share", "p50_us", "p95_us", "p99_us")
	for c := 0; c < NumComponents; c++ {
		st := &p.Comp[c]
		if st.TotalUS == 0 && st.P99US == 0 {
			continue
		}
		share := int64(0)
		if p.TotalUS > 0 {
			share = st.TotalUS * 10000 / p.TotalUS
		}
		fmt.Fprintf(&b, "%-12s %12d %5d.%02d%% %10d %10d %10d\n",
			Component(c).String(), st.TotalUS, share/100, share%100,
			st.P50US, st.P95US, st.P99US)
	}
	fmt.Fprintf(&b, "critical paths (top %d by total virtual time):\n", len(p.Paths))
	for i := range p.Paths {
		pp := &p.Paths[i]
		share := int64(0)
		if p.TotalUS > 0 {
			share = pp.TotalUS * 10000 / p.TotalUS
		}
		fmt.Fprintf(&b, "  %5d.%02d%%  %4dx  %s\n", share/100, share%100, pp.Count, pp.Signature)
	}
	fmt.Fprintf(&b, "p99 tail (latency >= %d us, %d requests):", p.TailCutUS, p.TailRequests)
	first := true
	for c := 0; c < NumComponents; c++ {
		if p.TailShareX100[c] == 0 {
			continue
		}
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, " %s %d.%02d%%", Component(c).String(),
			p.TailShareX100[c]/100, p.TailShareX100[c]%100)
	}
	b.WriteString("\n")
	return b.String()
}
