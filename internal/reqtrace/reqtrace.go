// Package reqtrace is the deterministic causal-tracing layer on top of
// simtrace: it threads a per-request trace context (TraceID, SpanID,
// ParentID) from cluster admission through partserver scheduling and
// execution, and turns the scheduler's attempt records into an exact
// virtual-time latency decomposition per request.
//
// Three design rules, inherited from simtrace and enforced by fpgavet:
//
//  1. Determinism. Every identifier is derived from (seed, request index,
//     span sequence) with the splitmix64 finalizer — never host entropy —
//     and every timestamp is virtual microseconds. Two runs with the same
//     seed produce byte-identical traces, breakdowns, critical-path
//     reports and postmortems, even under the race detector.
//
//  2. Conservation. A request's decomposition components sum exactly to
//     its end-to-end virtual latency (DoneUS − ArrivalUS). This is not an
//     approximation: the builder splits the same charged intervals the
//     scheduler used, so the property holds by construction and is pinned
//     by property tests, fault-free and under crashes.
//
//  3. Zero cost when disabled. The Recorder's hot entry points (Admit,
//     Attempt, Finish, Event) are nil-receiver no-ops and allocation-free
//     when enabled (field-backed appends, preallocated flight ring) — the
//     hotpath-alloc analyzer and an AllocsPerRun guard both enforce it.
//
// The analysis layer extracts each request's critical path (the span chain
// is the longest path through the causal DAG — every span has a single
// causal parent), aggregates top-K path signatures across a run, and
// attributes the p99 tail to components ("p99 requests spend 71% in queue
// wait"). A bounded flight recorder keeps the last K causal events for a
// deterministic postmortem dump on simulator faults, crashes or timeouts.
package reqtrace

// Component indexes one summand of a request's latency decomposition.
// Together the components tile [ArrivalUS, DoneUS) exactly: their sum is
// the end-to-end virtual latency, the conservation law the property tests
// pin.
type Component int

const (
	// CompRoute is the consistent-hash ring lookup and clockwise failover
	// decision. The current router model charges it zero virtual time; it
	// stays a first-class component so a future routing-cost model changes
	// a number, not the schema.
	CompRoute Component = iota
	// CompQuotaWait is per-tenant admission-quota deferral at the router
	// (AdmitUS − ArrivalUS).
	CompQuotaWait
	// CompHandoffWait is migration drain-barrier wait: a request whose key
	// just moved to a new owner waits at the router until the old owner has
	// drained its queued work for the moved range (admission to shard
	// arrival).
	CompHandoffWait
	// CompHedgeWait is the wait from admission to hedge issue, charged when
	// the replica hedge lane won the request: the winner's timeline starts
	// at the hedge deadline, so the deadline itself is router wait.
	CompHedgeWait
	// CompQueueWait is admission-queue plus backlog wait on the shard, from
	// scheduler arrival to the first dispatch.
	CompQueueWait
	// CompReconfig is the FPGA partial-reconfiguration window of each batch
	// the request rode through.
	CompReconfig
	// CompBatchWait is time spent waiting behind earlier jobs of the same
	// FPGA batch before this request's own execution started.
	CompBatchWait
	// CompExec is the request's own execution charge — simulated FPGA
	// cycles or the calibrated CPU rate — excluding spill traffic.
	CompExec
	// CompSpill is the spill round-trip charge of a budgeted join (bytes
	// written and re-read at the join rate).
	CompSpill
	// CompBatchDrain is time spent waiting for later jobs of the same batch
	// to finish (the scheduler completes a batch atomically).
	CompBatchDrain
	// CompRetryWait is requeue wait after a fault-, crash- or
	// overflow-aborted attempt, until the next dispatch (or the deadline).
	CompRetryWait
	// CompMergeWait is scatter-gather merge wait at the router. The current
	// merge model charges zero virtual time (results are merged at their
	// shard completion stamp); like CompRoute it is schema, not a measured
	// zero forever.
	CompMergeWait

	// NumComponents is the component count; Breakdown arrays index by it.
	NumComponents int = iota
)

var componentNames = [NumComponents]string{
	"route", "quota_wait", "handoff_wait", "hedge_wait", "queue_wait",
	"reconfig", "batch_wait", "exec", "spill", "batch_drain", "retry_wait",
	"merge_wait",
}

func (c Component) String() string {
	if c < 0 || int(c) >= NumComponents {
		return "request"
	}
	return componentNames[c]
}

// CompRequest labels a trace's root span, which is not a decomposition
// component (its duration is the whole latency).
const CompRequest Component = -1

// Breakdown is a request's latency decomposition in virtual microseconds,
// indexed by Component.
type Breakdown [NumComponents]int64

// Sum returns the total of all components — by the conservation law, the
// request's end-to-end latency.
func (b *Breakdown) Sum() int64 {
	var s int64
	for _, v := range b {
		s += v
	}
	return s
}

// TraceID identifies one request's causal trace; SpanID one span within it.
type TraceID uint64
type SpanID uint64

// mix is splitmix64's finalizer, the project-wide seeded derivation hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID derives the trace id of request index under seed. Pure
// function of its arguments — never host entropy — so same-seed runs carry
// identical ids.
func NewTraceID(seed uint64, index int) TraceID {
	return TraceID(mix(seed ^ mix(uint64(index)+1)))
}

// SpanID derives the id of the seq-th span of the trace.
func (t TraceID) SpanID(seq int) SpanID {
	return SpanID(mix(uint64(t) ^ mix(uint64(seq)+1)))
}

// Span is one segment of a request's causal chain. Parent is the causally
// preceding span (the root for the first segment, 0 for the root itself):
// every span has exactly one causal predecessor, so the chain is also the
// longest — the critical — path through the request's span DAG.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Comp is the simtrace timeline the segment belongs to ("router",
	// "sched", "fpga0", "cpu1", …).
	Comp string
	// Kind classifies the segment for the decomposition (CompRequest for
	// the root).
	Kind Component
	// StartUS and DurUS locate the segment on the virtual clock.
	StartUS int64
	DurUS   int64
}

// RequestTrace is one request's complete causal record: the span chain,
// the exact latency decomposition, and the request outcome.
type RequestTrace struct {
	TraceID TraceID
	// Index is the request's position in the submitted stream (the job id
	// for a standalone partserver run).
	Index int
	// Status is the terminal status string ("done", "timedout", …;
	// "unrouted" for a request no live shard could accept).
	Status string
	// Shard is where the request executed (-1: standalone run or never
	// admitted); Rerouted and Throttled echo the router's decisions.
	// Hedged marks a request whose router issued a replica hedge; HedgeWon
	// marks the hedge lane finishing first (the trace's execution spans are
	// then the hedge lane's, and Shard stays the primary's id).
	Shard     int
	Rerouted  bool
	Throttled bool
	Hedged    bool
	HedgeWon  bool

	// Virtual timeline (µs) and the conservation identity:
	// Breakdown.Sum() == LatencyUS == DoneUS − ArrivalUS.
	ArrivalUS, DoneUS, LatencyUS int64

	Breakdown Breakdown
	// Spans is the causal chain, root first, in virtual-time order.
	Spans []Span
}

// Conserved reports whether the decomposition sums exactly to the
// end-to-end latency — the invariant the property tests pin.
func (rt *RequestTrace) Conserved() bool {
	return rt.Breakdown.Sum() == rt.LatencyUS
}

// PathSignature renders the request's critical path as the sequence of
// components that actually consumed virtual time, ">"-joined with
// consecutive repeats collapsed (retry loops read "reconfig>exec" once per
// distinct phase, not once per attempt). Requests whose whole latency is
// zero sign as "instant".
func (rt *RequestTrace) PathSignature() string {
	sig := ""
	last := ""
	for i := range rt.Spans {
		sp := &rt.Spans[i]
		if sp.Kind == CompRequest || sp.DurUS <= 0 {
			continue
		}
		name := sp.Kind.String()
		if name == last {
			continue
		}
		if sig != "" {
			sig += ">"
		}
		sig += name
		last = name
	}
	if sig == "" {
		return "instant"
	}
	return sig
}
