package reqtrace

// DefaultFlightCap is the default capacity of a flight-recorder ring:
// enough causal context around a fault for a postmortem, small enough to
// stay resident however long the run.
const DefaultFlightCap = 256

// Attempt is one execution attempt of one job, as charged by the
// scheduler. The five duration fields tile the attempt's batch interval
// exactly: StartUS + ReconfigUS + PreWaitUS + ExecUS + SpillUS + DrainUS
// is the batch completion time, for every job of the batch.
type Attempt struct {
	// Resource is the executing timeline ("fpga0", "cpu1", …); FPGA
	// distinguishes the pools without string comparison.
	Resource string
	FPGA     bool

	// StartUS is the batch dispatch time.
	StartUS int64
	// ReconfigUS is the batch's circuit-reconfiguration window (0 when the
	// configuration was already loaded, or on CPU).
	ReconfigUS int64
	// PreWaitUS is the summed charge of earlier jobs in the batch.
	PreWaitUS int64
	// ExecUS is this job's own charge, spill excluded.
	ExecUS int64
	// SpillUS is the spill round-trip share of this job's charge.
	SpillUS int64
	// DrainUS is the summed charge of later jobs in the batch.
	DrainUS int64

	// Aborted marks a scheduler-decided transient fault or crash verdict;
	// Crash narrows it to a fail-stop; Overflow marks a PAD-mode partition
	// overflow that degraded the job to CPU.
	Aborted  bool
	Crash    bool
	Overflow bool
}

// EndUS returns the attempt's batch completion time.
func (a *Attempt) EndUS() int64 {
	return a.StartUS + a.ReconfigUS + a.PreWaitUS + a.ExecUS + a.SpillUS + a.DrainUS
}

// JobRecord accumulates one job's causal history on the scheduler loop.
type JobRecord struct {
	ID  int
	Tag int64
	// ArrivalUS is the job's arrival on the scheduler's clock (the admit
	// time when a router fronts the scheduler); DoneUS its terminal time.
	ArrivalUS int64
	DoneUS    int64
	// Status is the terminal status string ("" until Finish).
	Status   string
	Attempts []Attempt
}

// FlightEvent is one entry of the bounded flight recorder: a causal event
// on the virtual clock, recorded in scheduler-loop (virtual-time) order.
type FlightEvent struct {
	// US is the virtual time of the event.
	US int64
	// Comp is the component the event happened on ("router", "sched",
	// "fpga0", …; cluster merges prefix the shard).
	Comp string
	// Kind names the event: "dispatch", "done", "fault", "crash",
	// "degrade", "timeout", "cancel", "failed", "throttle", "failover",
	// "shard_crash", "unrouted"; membership and hedging add "shard_join",
	// "shard_drain", "range_moved", "hedge_issued", "hedge_won" (router
	// side) and "hedge_lost" (a hedge lane's cancel, rewritten at merge).
	Kind string
	// Job is the job id (request index after a cluster merge), -1 when the
	// event is not job-scoped.
	Job int
	// Arg carries per-kind context: the attempt number for scheduler
	// events, the shard id for router events.
	Arg int64
}

// Flight is a fixed-capacity ring of the last K causal events — a hardware
// flight recorder for the virtual-time scheduler. Nil is a no-op recorder.
type Flight struct {
	ring  []FlightEvent
	next  int
	total int64
}

// NewFlight returns a flight recorder holding up to capacity events
// (DefaultFlightCap when capacity ≤ 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Flight{ring: make([]FlightEvent, 0, capacity)}
}

// Record appends an event, overwriting the oldest when full. Nil-safe and
// allocation-free: the ring is preallocated at construction.
func (f *Flight) Record(e FlightEvent) {
	if f == nil {
		return
	}
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.next] = e
	}
	f.next++
	if f.next == cap(f.ring) {
		f.next = 0
	}
	f.total++
}

// Events returns the surviving events oldest-first (freshly allocated).
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) {
		return append(out, f.ring...)
	}
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Dropped returns how many events were overwritten by newer ones.
func (f *Flight) Dropped() int64 {
	if f == nil {
		return 0
	}
	return f.total - int64(len(f.ring))
}

// Recorder collects per-job causal records and flight events on the
// scheduler loop. The zero value of *Recorder (nil) disables recording:
// every method is a nil-receiver no-op, so an untraced run pays one nil
// check per call site and allocates nothing (hotpath-alloc enforced).
type Recorder struct {
	jobs   []JobRecord
	flight *Flight
}

// NewRecorder returns a recorder whose flight ring holds up to flightCap
// events (DefaultFlightCap when ≤ 0).
func NewRecorder(flightCap int) *Recorder {
	return &Recorder{flight: NewFlight(flightCap)}
}

// Admit registers job id (its caller tag and scheduler arrival time).
// Jobs are registered in id order; gaps are filled with empty records.
func (r *Recorder) Admit(id int, tag, arrivalUS int64) {
	if r == nil || id < 0 {
		return
	}
	for len(r.jobs) <= id {
		r.jobs = append(r.jobs, JobRecord{ID: len(r.jobs)})
	}
	j := &r.jobs[id]
	j.Tag = tag
	j.ArrivalUS = arrivalUS
}

// Attempt records one charged execution attempt of job id.
func (r *Recorder) Attempt(id int, a Attempt) {
	if r == nil || id < 0 || id >= len(r.jobs) {
		return
	}
	j := &r.jobs[id]
	j.Attempts = append(j.Attempts, a)
}

// Finish stamps job id's terminal status and completion time.
func (r *Recorder) Finish(id int, status string, doneUS int64) {
	if r == nil || id < 0 || id >= len(r.jobs) {
		return
	}
	j := &r.jobs[id]
	j.Status = status
	j.DoneUS = doneUS
}

// Event records a flight event. Comp and Kind are expected to be string
// constants (the flight ring stores them as-is).
func (r *Recorder) Event(us int64, comp, kind string, job int, arg int64) {
	if r == nil {
		return
	}
	r.flight.Record(FlightEvent{US: us, Comp: comp, Kind: kind, Job: job, Arg: arg})
}

// Jobs returns the recorded jobs in id order. The slice aliases the
// recorder's state; read it only after the run has drained.
func (r *Recorder) Jobs() []JobRecord {
	if r == nil {
		return nil
	}
	return r.jobs
}

// Job returns job id's record (nil when unknown).
func (r *Recorder) Job(id int) *JobRecord {
	if r == nil || id < 0 || id >= len(r.jobs) {
		return nil
	}
	return &r.jobs[id]
}

// FlightEvents returns the surviving flight events oldest-first.
func (r *Recorder) FlightEvents() []FlightEvent {
	if r == nil {
		return nil
	}
	return r.flight.Events()
}

// FlightDropped returns how many flight events were overwritten.
func (r *Recorder) FlightDropped() int64 {
	if r == nil {
		return 0
	}
	return r.flight.Dropped()
}
