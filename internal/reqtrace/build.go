package reqtrace

// RouterStep is the router-side prefix of one request's causal chain: the
// ring decision and the quota-adjusted admission, as decided in
// (ArrivalUS, index) order by the cluster frontend.
type RouterStep struct {
	// ArrivalUS is the request's arrival at the router; AdmitUS the
	// quota-adjusted admission (== ArrivalUS when not throttled).
	ArrivalUS int64
	AdmitUS   int64
	Throttled bool
	// Shard is the serving shard after failover (-1: every shard was
	// dead); Primary the ring owner before failover.
	Shard   int
	Primary int

	// HandoffUS is the migration drain-barrier wait between admission and
	// the serving shard's arrival: the request's key had just moved to a new
	// owner, which may not serve it before the old owner drained the moved
	// range (0 when the key was not migrating).
	HandoffUS int64

	// Hedged marks a request the router hedged to a replica after the
	// virtual-time deadline; HedgeIssueUS is the issue instant
	// (AdmitUS + deadline). When the hedge won (HedgeWon), the job record
	// passed to BuildRouted must be the hedge lane's: the winner's chain is
	// then quota wait → hedge wait (admission to issue) → the lane's
	// execution, and the handoff barrier (a primary-side delay) is not
	// charged.
	Hedged       bool
	HedgeWon     bool
	HedgeIssueUS int64
}

// BuildJob converts one standalone scheduler job record into a request
// trace under seed. The job id is the request index.
func BuildJob(seed uint64, job *JobRecord) RequestTrace {
	return build(seed, job.ID, nil, job)
}

// BuildJobs converts a standalone run's records, in job order.
func BuildJobs(seed uint64, jobs []JobRecord) []RequestTrace {
	out := make([]RequestTrace, len(jobs))
	for i := range jobs {
		out[i] = BuildJob(seed, &jobs[i])
	}
	return out
}

// BuildRouted converts one routed request — the router step plus the shard
// scheduler's job record — into a request trace under seed. job is nil for
// a request no live shard could accept.
func BuildRouted(seed uint64, index int, step RouterStep, job *JobRecord) RequestTrace {
	return build(seed, index, &step, job)
}

// builder threads the causal chain: each added segment's parent is the
// previously added span, so the chain parents encode the request's causal
// DAG (and, every span having one predecessor, its critical path).
type builder struct {
	rt   *RequestTrace
	seq  int
	prev SpanID
}

func (b *builder) add(comp string, kind Component, start, dur int64) {
	id := b.rt.TraceID.SpanID(b.seq)
	b.rt.Spans = append(b.rt.Spans, Span{
		ID:      id,
		Parent:  b.prev,
		Comp:    comp,
		Kind:    kind,
		StartUS: start,
		DurUS:   dur,
	})
	b.seq++
	b.prev = id
	if kind >= 0 && int(kind) < NumComponents {
		b.rt.Breakdown[kind] += dur
	}
}

func build(seed uint64, index int, step *RouterStep, job *JobRecord) RequestTrace {
	rt := RequestTrace{
		TraceID: NewTraceID(seed, index),
		Index:   index,
		Shard:   -1,
		Status:  "unrouted",
	}
	rootComp := "sched"
	arrival := int64(0)
	if step != nil {
		rootComp = "router"
		arrival = step.ArrivalUS
		rt.Throttled = step.Throttled
		rt.Hedged = step.Hedged
		rt.HedgeWon = step.HedgeWon
		if step.Shard >= 0 {
			rt.Shard = step.Shard
			rt.Rerouted = step.Shard != step.Primary
		}
	} else if job != nil {
		arrival = job.ArrivalUS
	}
	done := arrival
	if job != nil {
		rt.Status = job.Status
		done = job.DoneUS
	}
	rt.ArrivalUS, rt.DoneUS = arrival, done
	rt.LatencyUS = done - arrival

	b := &builder{rt: &rt}
	// Root span: the whole request. Its duration is the latency itself,
	// not a decomposition component.
	b.add(rootComp, CompRequest, arrival, rt.LatencyUS)

	if step != nil {
		// Ring lookup + failover: charged zero virtual time by the current
		// router model, kept as an explicit zero-duration segment.
		b.add("router", CompRoute, arrival, 0)
		if step.AdmitUS > arrival {
			b.add("router", CompQuotaWait, arrival, step.AdmitUS-arrival)
		}
		if step.HedgeWon {
			// The winner is the hedge lane: its job record starts at the
			// issue instant, so the deadline interval is hedge wait. The
			// primary's handoff barrier is not on the winning path.
			if step.HedgeIssueUS > step.AdmitUS {
				b.add("router", CompHedgeWait, step.AdmitUS, step.HedgeIssueUS-step.AdmitUS)
			}
		} else if step.HandoffUS > 0 {
			b.add("router", CompHandoffWait, step.AdmitUS, step.HandoffUS)
		}
	}

	if job != nil {
		cursor := job.ArrivalUS
		for i := range job.Attempts {
			a := &job.Attempts[i]
			if a.StartUS > cursor {
				// Wait to this dispatch: admission-queue wait before the
				// first attempt, requeue wait between attempts.
				kind := CompQueueWait
				if i > 0 {
					kind = CompRetryWait
				}
				b.add("sched", kind, cursor, a.StartUS-cursor)
			}
			cursor = a.StartUS
			if a.ReconfigUS > 0 {
				b.add(a.Resource, CompReconfig, cursor, a.ReconfigUS)
				cursor += a.ReconfigUS
			}
			if a.PreWaitUS > 0 {
				b.add(a.Resource, CompBatchWait, cursor, a.PreWaitUS)
				cursor += a.PreWaitUS
			}
			b.add(a.Resource, CompExec, cursor, a.ExecUS)
			cursor += a.ExecUS
			if a.SpillUS > 0 {
				b.add(a.Resource, CompSpill, cursor, a.SpillUS)
				cursor += a.SpillUS
			}
			if a.DrainUS > 0 {
				b.add(a.Resource, CompBatchDrain, cursor, a.DrainUS)
				cursor += a.DrainUS
			}
		}
		if done > cursor {
			// Tail wait after the last charged interval: queue wait for a
			// never-dispatched job (timeout/cancel/unschedulable), requeue
			// wait when aborted attempts preceded the deadline.
			kind := CompQueueWait
			if len(job.Attempts) > 0 {
				kind = CompRetryWait
			}
			b.add("sched", kind, cursor, done-cursor)
		}
	}

	if step != nil {
		// Scatter-gather merge: zero virtual time under the current merge
		// model (results merge at their shard completion stamp).
		b.add("router", CompMergeWait, done, 0)
	}
	return rt
}
