package reqtrace

import (
	"fmt"
	"io"

	"fpgapart/internal/simtrace"
)

// WriteBreakdownJSON writes the per-request latency breakdowns as a JSON
// document. The writer is hand-rolled field by field — no map iteration, no
// reflection — so the bytes are a pure function of the traces and two
// same-seed runs produce identical files.
func WriteBreakdownJSON(w io.Writer, traces []RequestTrace) error {
	write := func(format string, args ...interface{}) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := write("{\n  \"requests\": ["); err != nil {
		return err
	}
	for i := range traces {
		rt := &traces[i]
		sep := ","
		if i == 0 {
			sep = ""
		}
		if err := write("%s\n    {\"index\": %d, \"trace_id\": \"%016x\", \"status\": %q, \"shard\": %d, \"rerouted\": %t, \"throttled\": %t, \"arrival_us\": %d, \"done_us\": %d, \"latency_us\": %d, \"conserved\": %t, \"path\": %q, \"breakdown\": {",
			sep, rt.Index, uint64(rt.TraceID), rt.Status, rt.Shard,
			rt.Rerouted, rt.Throttled, rt.ArrivalUS, rt.DoneUS,
			rt.LatencyUS, rt.Conserved(), rt.PathSignature()); err != nil {
			return err
		}
		for c := 0; c < NumComponents; c++ {
			csep := ", "
			if c == 0 {
				csep = ""
			}
			if err := write("%s%q: %d", csep, Component(c).String(), rt.Breakdown[c]); err != nil {
				return err
			}
		}
		if err := write("}}"); err != nil {
			return err
		}
	}
	return write("\n  ]\n}\n")
}

// WritePostmortem dumps a flight recorder's surviving events as a
// deterministic text postmortem: the cause line, the drop count, and the
// last events oldest-first on the virtual clock.
func WritePostmortem(w io.Writer, cause string, events []FlightEvent, dropped int64) error {
	if _, err := fmt.Fprintf(w, "FLIGHT RECORDER POSTMORTEM\ncause: %s\n", cause); err != nil {
		return err
	}
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d older events overwritten)\n", dropped); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "last %d events, oldest first:\n", len(events)); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		if e.Job >= 0 {
			if _, err := fmt.Fprintf(w, "  t=%-10d %-14s %-11s job=%d arg=%d\n",
				e.US, e.Comp, e.Kind, e.Job, e.Arg); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "  t=%-10d %-14s %-11s arg=%d\n",
			e.US, e.Comp, e.Kind, e.Arg); err != nil {
			return err
		}
	}
	return nil
}

// EmitChrome adds the causal layer to a session's Chrome trace: one root
// span per request on a dedicated "req" timeline, and flow arrows binding
// each cross-component handoff of the request's critical path, so the
// Perfetto/chrome://tracing arrows walk a request through router, scheduler
// and execution timelines. Not a hot path: runs once, after the simulation.
func EmitChrome(sess *simtrace.Session, traces []RequestTrace) {
	if sess == nil || sess.Tracer == nil {
		return
	}
	tr := sess.Tracer
	for i := range traces {
		rt := &traces[i]
		name := fmt.Sprintf("req%d[%s]", rt.Index, rt.Status)
		tr.Span("req", name, rt.ArrivalUS, rt.LatencyUS)
		for s := 1; s < len(rt.Spans); s++ {
			prev, cur := &rt.Spans[s-1], &rt.Spans[s]
			if prev.Kind == CompRequest || prev.Comp == cur.Comp {
				continue
			}
			// Chrome trace flow ids must be non-negative: mask the span id
			// into 63 bits.
			id := int64(uint64(cur.ID) & (1<<63 - 1))
			tr.FlowStart(prev.Comp, name, prev.StartUS+prev.DurUS, id)
			tr.FlowEnd(cur.Comp, name, cur.StartUS, id)
		}
	}
}
